"""Fleet-engine benchmarks at thousand-tenant scale.

Two tracked entries and one multi-core gate:

* ``test_fleet_1000jobs_10k_iterations`` pins this PR's headline
  workload — 1,000 jobs x 10,000 iterations each, fair-share on 4,800
  shared GPUs, failures and elastic resizes throughout, from cold plan
  *and* shared-state caches — through the single-process batched
  engine. This is the absolute floor sharding is measured against.
* ``test_fleet_sharded_sync_overhead`` runs the 100-job workload
  through two shard worker processes on purpose: on any machine the
  sharded time is batched time plus coordination (fork + digest sync +
  event replay), so tracking it guards the IPC overhead itself against
  regression.
* ``test_sharded_speedup_on_multicore`` holds ``workers=N`` to >=3x
  over single-process batched on the headline workload — the speedup
  the shards exist to deliver. Process sharding buys nothing without
  cores to run the shards on, so the gate only arms where
  ``os.cpu_count() >= 4``; single-core boxes (where sharding is pure
  overhead by construction) skip it.
"""

import os

import pytest

from repro.core.config import DistTrainConfig
from repro.core.reports import format_table
from repro.fleet import FleetEngine, FleetSpec
from repro.fleet.job import STATE_CACHE
from repro.orchestration.plancache import PLAN_CACHE
from repro.scenarios import ScenarioSpec

#: Heavyweight fleet evaluations; deselected from the default tier-1
#: run (see pyproject addopts) and exercised by CI's full benchmark job.
pytestmark = pytest.mark.slow

JOB_CONFIG = DistTrainConfig.preset("mllm-9b", 48, 16)

#: Each tenant's dynamics: real failures, elastic shrinking, repairs.
JOB_SCENARIO = ScenarioSpec(
    num_iterations=10_000,
    checkpoint_interval=50,
    mtbf_gpu_hours=60.0,
    elastic=True,
    repair_seconds=900.0,
)


def fleet_spec() -> FleetSpec:
    """1,000 x (48-GPU demand) on 4,800 shared GPUs: 10x oversubscribed."""
    return FleetSpec.homogeneous(
        JOB_CONFIG,
        cluster_gpus=4800,
        num_jobs=1000,
        job_gpus=48,
        arrival_spacing_s=120.0,
        priorities=(1, 0),
        policy="fair-share",
        scenario=JOB_SCENARIO,
    )


def cold_engine(spec: FleetSpec, workers: int) -> FleetEngine:
    # Cold start: every orchestration solve and every shared cluster
    # state build lands inside the measured time.
    PLAN_CACHE.clear()
    STATE_CACHE.clear()
    return FleetEngine(spec, workers=workers)


def test_fleet_1000jobs_10k_iterations(benchmark):
    def run():
        engine = cold_engine(fleet_spec(), workers=1)
        return engine, engine.run()

    engine, result = benchmark.pedantic(run, rounds=1, iterations=1)
    metrics = result.metrics()
    cache = engine.state_cache_stats
    print()
    print(format_table(
        ["metric", "value"],
        [
            ["fleet goodput", f"{metrics['fleet_goodput'] * 100:.1f}%"],
            ["utilization", f"{metrics['utilization'] * 100:.1f}%"],
            ["failures", int(metrics["num_failures"])],
            ["re-orchestrations", int(metrics["num_replans"])],
            ["jobstate cache (hit/miss)",
             f"{cache['hits']}/{cache['misses']}"],
        ],
        title="1000 x 10k-iteration jobs, fair-share on 4800 shared GPUs:",
    ))
    # Order-of-magnitude guard only; the tracked baseline enforces the
    # calibrated budget (~112 s single-process when blessed).
    assert benchmark.stats.stats.mean < 600.0
    assert len(result.records) == 1000
    assert all(r.result.num_iterations == 10_000 for r in result.records)
    assert metrics["num_failures"] > 0
    assert metrics["num_replans"] > 0
    assert 0.0 < metrics["fleet_goodput"] <= 1.0
    # The sized STATE_CACHE must keep the working set resident: a
    # thousand same-task tenants build each cluster state once.
    assert cache["hits"] > 100 * cache["misses"]


def test_fleet_sharded_sync_overhead(benchmark):
    """Two shard workers on the 100-job workload: the tracked mean is
    batched compute plus the full coordination bill (worker forks,
    per-round digest sync, ordered event replay), so IPC regressions
    surface here even on single-core runners."""
    spec = FleetSpec.homogeneous(
        JOB_CONFIG,
        cluster_gpus=480,
        num_jobs=100,
        job_gpus=48,
        arrival_spacing_s=120.0,
        priorities=(1, 0),
        policy="fair-share",
        scenario=ScenarioSpec(
            num_iterations=1000,
            checkpoint_interval=50,
            mtbf_gpu_hours=60.0,
            elastic=True,
            repair_seconds=900.0,
        ),
    )

    def run():
        engine = cold_engine(spec, workers=2)
        return engine, engine.run()

    engine, result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nsync {engine.shard_sync_bytes / 1024:.0f} KiB over "
          f"{engine.workers} shards, {engine.shard_respawns} respawns")
    assert engine.workers == 2
    assert engine.shard_sync_bytes > 0
    assert engine.shard_respawns == 0
    assert len(result.records) == 100
    assert result.metrics()["num_failures"] > 0


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="process sharding needs cores; speedup is only meaningful "
           "with >=4 (single-core sharding is pure IPC overhead)",
)
def test_sharded_speedup_on_multicore(benchmark):
    """On a multi-core box the sharded engine must hold >=3x over
    single-process batched on the headline 1,000 x 10k workload, while
    returning the byte-identical result (the equivalence suite pins
    identity exhaustively; the metrics check here is a cheap tripwire
    on the exact workload being timed)."""
    import time

    start = time.perf_counter()
    batched = cold_engine(fleet_spec(), workers=1).run()
    batched_seconds = time.perf_counter() - start

    workers = min(8, os.cpu_count() or 1)
    sharded = benchmark.pedantic(
        lambda: cold_engine(fleet_spec(), workers=workers).run(),
        rounds=1, iterations=1,
    )
    sharded_seconds = benchmark.stats.stats.mean
    speedup = batched_seconds / sharded_seconds
    print(f"\nbatched {batched_seconds:.2f}s / sharded({workers}) "
          f"{sharded_seconds:.2f}s = {speedup:.1f}x "
          f"on {os.cpu_count()} cores")
    assert sharded.metrics() == batched.metrics()
    assert speedup >= 3.0
