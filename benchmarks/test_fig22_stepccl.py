"""Figure 22 — overlapping TP communication with StepCCL.

Iteration time of one LLM PP stage (one minimal TP group) with and
without StepCCL, TP in {4, 8}, for Llama3-7B/13B/70B. Paper: StepCCL
wins 1.1-1.12x at TP=4 and 1.15-1.17x at TP=8, with larger gains at
larger TP where communication is a bigger fraction of the stage.
"""

import pytest

from repro.cluster.node import AMPERE_NODE
from repro.core.reports import format_table
from repro.models.llm import LLAMA3_7B, LLAMA3_13B, LLAMA3_70B
from repro.stepccl.layer import llm_stage_iteration_time

BACKBONES = (LLAMA3_7B, LLAMA3_13B, LLAMA3_70B)


def compute_figure22():
    rows = []
    for tp in (4, 8):
        for llm in BACKBONES:
            base = llm_stage_iteration_time(llm, AMPERE_NODE, tp, False)
            fast = llm_stage_iteration_time(llm, AMPERE_NODE, tp, True)
            rows.append((tp, llm.name, base, fast, base / fast))
    return rows


def test_figure22_stepccl(benchmark):
    rows = benchmark.pedantic(compute_figure22, rounds=1, iterations=1)
    print()
    print(format_table(
        ["TP", "backbone", "w/o StepCCL (s)", "StepCCL (s)", "speedup"],
        [
            [tp, name, f"{base:.2f}", f"{fast:.2f}", f"{gain:.3f}x"]
            for tp, name, base, fast, gain in rows
        ],
        title="Figure 22: one-PP-stage iteration time (8 microbatches)",
    ))
    gains = {(tp, name): gain for tp, name, _, _, gain in rows}
    for (tp, name), gain in gains.items():
        assert gain > 1.0
    for llm in BACKBONES:
        # Gains grow with TP (paper: ~1.1x @TP4 vs ~1.16x @TP8).
        assert gains[(8, llm.name)] > gains[(4, llm.name)]
    # TP=8 band straddles the paper's 1.15-1.17x.
    tp8 = [gains[(8, llm.name)] for llm in BACKBONES]
    assert min(tp8) > 1.05
    assert max(tp8) < 1.30
