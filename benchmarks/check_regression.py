"""Benchmark regression guard for the tracked figure benchmarks.

Compares a fresh pytest-benchmark JSON against the committed baseline
(``benchmarks/baseline.json``) and fails if any tracked benchmark's mean
time regressed more than the threshold (20% by default).

Raw wall-clock comparison across machines is meaningless, so both the
baseline and the check normalize by a CPU *calibration score* — the time
of a fixed pure-Python workload measured on the spot. A benchmark
regresses only if its calibration-normalized mean exceeds the baseline's
by more than the threshold.

Usage::

    # CI / local check (exit 1 on regression):
    python benchmarks/check_regression.py bench-current.json

    # Re-bless the baseline after an intentional change. Pass several
    # reports from repeated runs: the baseline takes each benchmark's
    # worst (max) mean, so ordinary run-to-run noise stays inside the
    # threshold and only genuine regressions fire:
    python benchmarks/check_regression.py run1.json run2.json run3.json --update

Tunables: ``--baseline PATH``, ``--threshold 1.2`` (ratio), and the
``BENCH_REGRESSION_THRESHOLD`` environment variable.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"
DEFAULT_THRESHOLD = 1.2

#: Benchmarks guarded against regression (substring match on the
#: pytest-benchmark name): the tracked figure benchmarks of the
#: vectorized-kernel work, the scenario engine's thousand-iteration
#: dynamics hot path, the 8-tenant, batched 100-tenant, and
#: 1,000-tenant x 10k-iteration fleet-scheduling workloads, the
#: two-shard sync overhead on the 100-tenant workload (guards the
#: coordinator<->shard IPC bill itself), the orchestration search (the
#: convex ablation plus every Table-3 scale of the batched analytic
#: engine), and the flight-recorder overhead (the same scenario
#: workload with tracing + metrics enabled — the disabled-hook cost is
#: implicitly guarded by the two untraced scenario/fleet entries
#: above).
TRACKED = (
    "test_figure16_reordering_ablation",
    "test_figure5_distributions",
    "test_convex_matches_enumeration",
    "test_scenario_1000_iterations",
    "test_fleet_8jobs_1000_iterations",
    "test_fleet_100jobs_1000_iterations",
    "test_fleet_1000jobs_10k_iterations",
    "test_fleet_sharded_sync_overhead",
    "test_obs_overhead",
    "test_table3_overhead[1296-1920]",
    "test_table3_overhead[648-960]",
    "test_table3_overhead[320-480]",
    "test_table3_overhead[112-240]",
)


def k_expression() -> str:
    """The ``pytest -k`` expression selecting every tracked benchmark.

    Parametrized names carry ``[...]`` suffixes that ``-k`` cannot
    parse, so the expression is built from the deduplicated base names.
    """
    bases = []
    for name in TRACKED:
        base = name.split("[", 1)[0]
        if base not in bases:
            bases.append(base)
    return " or ".join(bases)


def calibration_score(repeats: int = 5) -> float:
    """Seconds for a fixed mixed workload (min over repeats).

    The tracked benchmarks split their time between Python-level work
    (schedule construction, scalar sampling) and small-array numpy
    (kernel level sweeps, SLSQP), so the calibration blends both — a
    runner whose interpreter and numpy speeds diverge still gets a
    representative scale factor.
    """
    import numpy as np

    rng = np.random.default_rng(0)
    matrix = rng.uniform(size=(64, 512))
    indices = rng.integers(0, 512, size=20_000)
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        total = 0
        for i in range(400_000):
            total += i * i
        acc = 0.0
        for _ in range(200):
            gathered = matrix[:, indices[:256]]
            acc += float(np.maximum(gathered, 0.5).sum())
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
        assert total > 0 and acc > 0
    return best


def load_means(report_path: Path) -> dict:
    report = json.loads(report_path.read_text())
    means = {}
    for bench in report.get("benchmarks", []):
        for tracked in TRACKED:
            if tracked in bench["name"]:
                means[tracked] = bench["stats"]["mean"]
    return means


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "reports", type=Path, nargs="*", metavar="report",
        help="pytest-benchmark JSON(s); checking uses exactly one, "
             "--update merges several into an envelope baseline",
    )
    parser.add_argument(
        "--print-k", action="store_true",
        help="print the pytest -k expression selecting the tracked "
             "benchmarks (single source of truth for CI) and exit",
    )
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(os.environ.get("BENCH_REGRESSION_THRESHOLD",
                                     DEFAULT_THRESHOLD)),
        help="maximum allowed normalized-mean ratio (default 1.2 = +20%%)",
    )
    parser.add_argument("--update", action="store_true",
                        help="write the baseline instead of checking")
    args = parser.parse_args(argv)

    if args.print_k:
        print(k_expression())
        return 0
    if not args.reports:
        parser.error("a report is required (or use --print-k)")
    if not args.update and len(args.reports) != 1:
        parser.error("checking takes exactly one report "
                     "(multiple reports are for --update)")
    means = {}
    for report in args.reports:
        report_means = load_means(report)
        missing = sorted(set(TRACKED) - set(report_means))
        if missing:
            print(f"error: report {report} lacks tracked benchmarks: "
                  f"{missing}", file=sys.stderr)
            return 2
        for name, mean in report_means.items():
            means[name] = max(mean, means.get(name, 0.0))
    calibration = calibration_score()

    if args.update:
        args.baseline.write_text(json.dumps({
            "calibration_seconds": calibration,
            "means_seconds": means,
        }, indent=1) + "\n")
        print(f"baseline written to {args.baseline} from "
              f"{len(args.reports)} report(s) "
              f"(calibration {calibration * 1e3:.2f} ms)")
        return 0

    baseline = json.loads(args.baseline.read_text())
    base_calibration = baseline["calibration_seconds"]
    scale = calibration / base_calibration
    print(f"calibration: baseline {base_calibration * 1e3:.2f} ms, "
          f"here {calibration * 1e3:.2f} ms (machine scale {scale:.2f}x)")

    # A tracked benchmark absent from the committed baseline means the
    # guard was widened (or a test renamed) without re-blessing — fail
    # loudly instead of silently dropping it from the check.
    stale = sorted(set(TRACKED) - set(baseline.get("means_seconds", {})))
    if stale:
        print(f"error: baseline {args.baseline} lacks tracked benchmarks: "
              f"{stale}; re-bless it with --update", file=sys.stderr)
        return 2

    failed = False
    for name in TRACKED:
        base_mean = baseline["means_seconds"][name]
        allowed = base_mean * scale * args.threshold
        current = means[name]
        verdict = "ok" if current <= allowed else "REGRESSED"
        failed |= current > allowed
        print(f"  {name}: {current * 1e3:.1f} ms "
              f"(allowed {allowed * 1e3:.1f} ms) {verdict}")
    if failed:
        print(f"benchmark regression beyond {args.threshold:.2f}x — "
              "if intentional, re-bless with --update", file=sys.stderr)
        return 1
    print("benchmarks within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
