"""Figures 6 and 11 — intra-microbatch stragglers and Algorithm 1.

Figure 6: contiguous assignment of a skewed global batch leaves one DP
group with the largest samples, straggling the iteration. Figure 11:
Algorithm 1's greedy LPT reorder balances the groups.
"""

import numpy as np
import pytest

from repro.core.reports import format_table
from repro.data.synthetic import SyntheticMultimodalDataset
from repro.reordering.baselines import random_order
from repro.reordering.intra import intra_reorder, reordered_makespan


def compute(num_samples=256, dp=16, seed=0):
    dataset = SyntheticMultimodalDataset(seed=seed)
    batch = dataset.take(num_samples)
    naive = reordered_makespan(batch, dp)
    rand = float(np.mean([
        reordered_makespan(random_order(batch, seed=s), dp)
        for s in range(8)
    ]))
    ours = reordered_makespan(intra_reorder(batch, dp), dp)
    ideal = sum(s.size for s in batch) / dp
    return naive, rand, ours, ideal


def test_figure6_11_intra_reordering(benchmark):
    naive, rand, ours, ideal = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["ordering", "straggler load (image tokens)", "vs ideal"],
        [
            ["arrival order (Fig. 6)", f"{naive:.0f}", f"{naive / ideal:.3f}"],
            ["random (Megatron-LM)", f"{rand:.0f}", f"{rand / ideal:.3f}"],
            ["Algorithm 1 (Fig. 11)", f"{ours:.0f}", f"{ours / ideal:.3f}"],
            ["ideal (perfect balance)", f"{ideal:.0f}", "1.000"],
        ],
        title="Figures 6/11: max per-DP-group load, 256 samples, DP=16",
    ))
    # Algorithm 1 beats random and is within the LPT bound of ideal.
    assert ours <= rand
    assert ours <= naive
    assert ours / ideal < 4.0 / 3.0
    # Paper's premise: unbalanced orders do straggle.
    assert rand / ideal > 1.01
