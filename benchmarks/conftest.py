"""Shared fixtures for the figure/table reproduction benchmarks.

Heavy computations (orchestration + iteration simulation at paper scale)
are session-scoped so Figure 13 and Figure 14 (and 18/19) share one run.
Every benchmark prints the same rows/series the paper reports; see
EXPERIMENTS.md for the paper-vs-measured record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import pytest

from repro.core.api import plan, simulate
from repro.core.config import DistTrainConfig
from repro.runtime.iteration import IterationResult

# Paper-scale settings (section 7.1): up to ~1.3k GPUs, GBS 1920.
OVERALL_CLUSTER_GPUS = 1296
OVERALL_GBS = 1920
# Ablation settings (section 7.2): up to 96 GPUs.
ABLATION_CLUSTER_GPUS = 96
ABLATION_GBS = {"mllm-9b": 128, "mllm-15b": 64, "mllm-72b": 40}

MODELS = ("mllm-9b", "mllm-15b", "mllm-72b")
FROZEN_SETTINGS = ("all-frozen", "encoder-only", "llm-only", "generator-only")


@dataclass
class SystemRun:
    """One (model, system) evaluation."""

    result: IterationResult
    num_gpus: int

    @property
    def mfu(self) -> float:
        return self.result.mfu

    @property
    def throughput(self) -> float:
        return self.result.throughput_tokens_per_s


def run_system(
    model: str,
    system: str,
    num_gpus: int,
    gbs: int,
    frozen: str = "full",
) -> SystemRun:
    config = DistTrainConfig.preset(
        model, num_gpus, gbs, frozen=frozen, system=system
    )
    orchestration = plan(config)
    result = simulate(config, orchestration)
    return SystemRun(result=result, num_gpus=result.num_gpus)


@pytest.fixture(scope="session")
def overall_results() -> Dict[str, Dict[str, SystemRun]]:
    """Figure 13/14 data: overall MFU/throughput at ~1.2k GPUs."""
    table: Dict[str, Dict[str, SystemRun]] = {}
    for model in MODELS:
        table[model] = {
            system: run_system(
                model, system, OVERALL_CLUSTER_GPUS, OVERALL_GBS
            )
            for system in ("disttrain", "megatron-lm")
        }
    return table


@pytest.fixture(scope="session")
def ablation_results() -> Dict[str, Dict[str, SystemRun]]:
    """Figure 15 data: orchestration ablation at <=96 GPUs."""
    table: Dict[str, Dict[str, SystemRun]] = {}
    for model in MODELS:
        table[model] = {
            system: run_system(
                model,
                system,
                ABLATION_CLUSTER_GPUS,
                ABLATION_GBS[model],
            )
            for system in ("disttrain", "megatron-lm", "distmm*")
        }
    return table


@pytest.fixture(scope="session")
def frozen_results() -> Dict[str, Dict[str, Dict[str, SystemRun]]]:
    """Figure 18/19 data: frozen-training settings at <=96 GPUs."""
    table: Dict[str, Dict[str, Dict[str, SystemRun]]] = {}
    for setting in FROZEN_SETTINGS:
        table[setting] = {}
        for model in MODELS:
            table[setting][model] = {
                system: run_system(
                    model,
                    system,
                    ABLATION_CLUSTER_GPUS,
                    ABLATION_GBS[model],
                    frozen=setting,
                )
                for system in ("disttrain", "megatron-lm")
            }
    return table
