"""Shared fixtures for the figure/table reproduction benchmarks.

All figure-scale evaluations run through the experiment campaign engine
(:mod:`repro.experiments`): each fixture declares its grid as a
:class:`SweepSpec`, and a session-scoped :class:`ResultCache` plus a
``multiprocessing`` pool make Figures 13/14 (and 15/18/19) share one
parallel, content-addressed run instead of re-solving orchestration
serially from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import pytest

from repro.experiments import (
    Axis,
    CampaignResult,
    CampaignRunner,
    ResultCache,
    ResultFrame,
    SweepSpec,
    ZippedAxes,
)

# Paper-scale settings (section 7.1): up to ~1.3k GPUs, GBS 1920.
OVERALL_CLUSTER_GPUS = 1296
OVERALL_GBS = 1920
# Ablation settings (section 7.2): up to 96 GPUs.
ABLATION_CLUSTER_GPUS = 96
ABLATION_GBS = {"mllm-9b": 128, "mllm-15b": 64, "mllm-72b": 40}

MODELS = ("mllm-9b", "mllm-15b", "mllm-72b")
FROZEN_SETTINGS = ("all-frozen", "encoder-only", "llm-only", "generator-only")

#: model x per-model GBS advancing in lockstep (the ablation tasks).
ABLATION_MODEL_AXIS = ZippedAxes([
    Axis("model", MODELS),
    Axis("gbs", [ABLATION_GBS[model] for model in MODELS]),
])


@dataclass
class SystemRun:
    """One (model, system) evaluation, backed by campaign metrics."""

    metrics: Dict[str, float]

    @property
    def mfu(self) -> float:
        return self.metrics["mfu"]

    @property
    def throughput(self) -> float:
        return self.metrics["throughput_tokens_per_s"]

    @property
    def num_gpus(self) -> int:
        return int(self.metrics["num_gpus"])


@pytest.fixture(scope="session")
def campaign_cache(tmp_path_factory) -> ResultCache:
    """One content-addressed result store for the whole benchmark session."""
    return ResultCache(tmp_path_factory.mktemp("campaign-cache"))


def run_campaign(spec: SweepSpec, cache: ResultCache) -> CampaignResult:
    """Execute a sweep in parallel; benchmark grids must not fail."""
    campaign = CampaignRunner(spec, cache=cache).run()
    if campaign.failed:
        details = "; ".join(
            f"{record.label()}: {record.error}"
            for record in campaign.failures
        )
        raise RuntimeError(f"campaign {spec.name!r} had failures: {details}")
    return campaign


def nested_by(campaign, *keys: str) -> Dict:
    """Campaign records as nested dicts keyed by parameter values."""
    table: Dict = {}
    for record in campaign.records:
        level = table
        for key in keys[:-1]:
            level = level.setdefault(record.params[key], {})
        level[record.params[keys[-1]]] = SystemRun(metrics=record.metrics)
    return table


@pytest.fixture(scope="session")
def overall_campaign(campaign_cache):
    """Figure 13/14 grid: overall MFU/throughput at ~1.2k GPUs."""
    spec = SweepSpec(
        name="fig13-14-overall",
        axes=[
            Axis("model", MODELS),
            Axis("system", ("disttrain", "megatron-lm")),
        ],
        base={"gpus": OVERALL_CLUSTER_GPUS, "gbs": OVERALL_GBS},
    )
    return run_campaign(spec, campaign_cache)


@pytest.fixture(scope="session")
def overall_results(overall_campaign) -> Dict[str, Dict[str, SystemRun]]:
    """Figure 13/14 data, indexed as ``[model][system]``."""
    return nested_by(overall_campaign, "model", "system")


@pytest.fixture(scope="session")
def overall_frame(overall_campaign) -> ResultFrame:
    """Figure 13/14 data as a ResultFrame (for ratio columns)."""
    return overall_campaign.frame().ok()


@pytest.fixture(scope="session")
def ablation_results(campaign_cache) -> Dict[str, Dict[str, SystemRun]]:
    """Figure 15 data: orchestration ablation at <=96 GPUs."""
    spec = SweepSpec(
        name="fig15-ablation",
        axes=[
            ABLATION_MODEL_AXIS,
            Axis("system", ("disttrain", "megatron-lm", "distmm*")),
        ],
        base={"gpus": ABLATION_CLUSTER_GPUS},
    )
    return nested_by(run_campaign(spec, campaign_cache), "model", "system")


@pytest.fixture(scope="session")
def frozen_results(
    campaign_cache,
) -> Dict[str, Dict[str, Dict[str, SystemRun]]]:
    """Figure 18/19 data: frozen-training settings at <=96 GPUs."""
    spec = SweepSpec(
        name="fig18-19-frozen",
        axes=[
            Axis("frozen", FROZEN_SETTINGS),
            ABLATION_MODEL_AXIS,
            Axis("system", ("disttrain", "megatron-lm")),
        ],
        base={"gpus": ABLATION_CLUSTER_GPUS},
    )
    campaign = run_campaign(spec, campaign_cache)
    return nested_by(campaign, "frozen", "model", "system")
