"""Figure 4 — the two pipeline-bubble types of monolithic orchestration.

(a) encoder/generator stages idle (their work is far lighter than the
    LLM stage they are forced to pace with);
(b) LLM stages stall behind a *heavy* multimodal stage.

Reproduced with the cycle-accurate pipeline simulator on a 3-stage
(encoder, LLM, generator) monolithic pipeline.
"""

import pytest

from repro.pipeline.schedules import ScheduleKind
from repro.pipeline.simulator import PipelineSimulator, StageWork


def run_pipeline(encoder_time, llm_time, generator_time, microbatches=8):
    fwd = [
        [encoder_time] * microbatches,
        [llm_time] * microbatches,
        [generator_time] * microbatches,
    ]
    bwd = [[2 * t for t in row] for row in fwd]
    sim = PipelineSimulator(3, microbatches, ScheduleKind.ONE_F_ONE_B)
    return sim.run(StageWork.from_tables(fwd, bwd))


def compute_figure4():
    # (a) light multimodal stages: they bubble while the LLM works.
    light = run_pipeline(encoder_time=0.1, llm_time=1.0, generator_time=0.1)
    # (b) heavy multimodal stage: the LLM bubbles behind it.
    heavy = run_pipeline(encoder_time=2.5, llm_time=1.0, generator_time=0.3)
    return light, heavy


def test_figure4_bubble_types(benchmark):
    light, heavy = benchmark.pedantic(compute_figure4, rounds=1, iterations=1)
    print()
    print("Figure 4(a): light encoder/generator (monolithic)")
    print(light.render_ascii(90))
    print(f"  encoder idle fraction: "
          f"{light.stage_bubble_time(0) / light.makespan:.2f}")
    print("Figure 4(b): heavy encoder stage (monolithic)")
    print(heavy.render_ascii(90))
    print(f"  LLM idle fraction: "
          f"{heavy.stage_bubble_time(1) / heavy.makespan:.2f}")

    # (a): multimodal stages idle most of the iteration.
    assert light.stage_bubble_time(0) / light.makespan > 0.5
    assert light.stage_bubble_time(2) / light.makespan > 0.5
    # (b): the heavy encoder forces large LLM bubbles.
    assert heavy.stage_bubble_time(1) / heavy.makespan > 0.3
    # And the iteration as a whole is dominated by the straggler stage.
    assert heavy.makespan > 2 * light.makespan
