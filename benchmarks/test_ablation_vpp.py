"""Ablation — virtual pipeline parallelism end-to-end (section 4.3).

The orchestration formulation divides the LLM's warm-up term by the VPP
size, and the runtime runs the interleaved-1F1B schedule with per-chunk
durations. This ablation plans and simulates MLLM-72B with and without
VPP on the same cluster.
"""

import pytest

from repro.core.api import build_simulator, plan
from repro.core.config import DistTrainConfig
from repro.core.reports import format_table
from repro.data.synthetic import SyntheticMultimodalDataset
from repro.pipeline.schedules import ScheduleKind

#: Heavyweight figure reproduction; deselected from the default tier-1
#: run (see pyproject addopts) and exercised by CI's full benchmark job.
pytestmark = pytest.mark.slow


def run_vpp_ablation():
    results = {}
    for vpp in (1, 2):
        config = DistTrainConfig.preset(
            "mllm-72b", 96, 40, vpp=vpp,
            schedule=(
                ScheduleKind.INTERLEAVED if vpp > 1
                else ScheduleKind.ONE_F_ONE_B
            ),
        )
        orchestration = plan(config)
        batch = SyntheticMultimodalDataset(seed=5).take(40)
        result = build_simulator(config, orchestration).simulate(batch)
        results[vpp] = (orchestration, result)
    return results


def test_vpp_ablation(benchmark):
    results = benchmark.pedantic(run_vpp_ablation, rounds=1, iterations=1)
    print()
    print(format_table(
        ["vpp", "llm plan", "predicted warmup (s)", "iter (s)", "MFU"],
        [
            [
                vpp,
                orchestration.plan.plans["llm"].describe(),
                f"{orchestration.breakdown.warmup:.2f}",
                f"{result.iteration_time:.2f}",
                f"{result.mfu * 100:.1f}%",
            ]
            for vpp, (orchestration, result) in results.items()
        ],
        title="Ablation: virtual pipeline parallelism, MLLM-72B @96 GPUs",
    ))
    plan1, res1 = results[1]
    plan2, res2 = results[2]
    # VPP=2 is reflected in the plan and shrinks the predicted warm-up
    # relative to its own vpp=1 evaluation (the formulation's Eq. 1 / vpp).
    assert plan2.plan.plans["llm"].vpp == 2
    # End-to-end, VPP must not slow the iteration down materially.
    assert res2.iteration_time <= res1.iteration_time * 1.10
