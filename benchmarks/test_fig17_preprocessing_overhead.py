"""Figure 17 — overhead of data preprocessing.

Per-iteration preprocessing time visible to the GPU trainers, with and
without disaggregation, for {8, 16} images x {512^2, 1024^2}. Paper:
disaggregation turns seconds into milliseconds.
"""

import pytest

from repro.cluster.node import AMPERE_NODE
from repro.core.reports import format_table
from repro.preprocessing.colocated import CoLocatedPreprocessing
from repro.preprocessing.cost import PreprocessCostModel
from repro.preprocessing.disaggregated import DisaggregatedPreprocessing
from repro.preprocessing.transfer import TransferModel

CONFIGS = [(8, 512), (8, 1024), (16, 512), (16, 1024)]


def compute_figure17():
    cost = PreprocessCostModel()
    # The paper measures with DP=1 on the GPU training side: a single
    # rank's dataloader workers carry all of the preprocessing.
    colocated = CoLocatedPreprocessing(
        node=AMPERE_NODE, cost=cost, dataloader_workers=4
    )
    disaggregated = DisaggregatedPreprocessing(
        cost=cost, transfer=TransferModel(), cpu_nodes=8
    )
    rows = []
    for images, resolution in CONFIGS:
        rows.append(
            (
                f"{images}, {resolution}x{resolution}",
                colocated.exposed_overhead_for_images(images, resolution),
                disaggregated.exposed_overhead_for_images(images, resolution),
            )
        )
    return rows


def test_figure17_preprocessing_overhead(benchmark):
    rows = benchmark.pedantic(compute_figure17, rounds=1, iterations=1)
    print()
    print(format_table(
        ["config", "w/o disaggregation", "disaggregated", "reduction"],
        [
            [cfg, f"{colo * 1e3:.0f} ms", f"{dis * 1e3:.2f} ms",
             f"{colo / dis:.0f}x"]
            for cfg, colo, dis in rows
        ],
        title="Figure 17: preprocessing overhead per iteration",
    ))
    for _, colocated, disaggregated in rows:
        # Disaggregated overhead is milliseconds (paper: "reduces
        # preprocessing time from seconds to milliseconds").
        assert disaggregated < 0.05
        assert colocated / disaggregated > 10
    # Heaviest config without disaggregation costs ~seconds.
    assert rows[-1][1] > 0.5
