"""Ablation — pipeline schedules: GPipe vs 1F1B vs interleaved 1F1B.

The paper adopts 1F1B over GPipe ("more memory without better
efficiency", section 4.2) and retrofits its formulation and reordering to
VPP (section 4.3). This ablation quantifies both decisions on a uniform
pipeline: equal makespans for GPipe/1F1B, lower activation pinning for
1F1B, and a smaller warm-up bubble for VPP.
"""

import pytest

from repro.core.reports import format_table
from repro.pipeline.ops import Direction
from repro.pipeline.schedules import ScheduleKind, schedule_order
from repro.pipeline.simulator import PipelineSimulator


P, L, TF, TB = 8, 32, 0.05, 0.10


def peak_in_flight(kind: ScheduleKind, vpp: int = 1) -> int:
    """Maximum microbatch activations pinned at stage 0."""
    order = schedule_order(kind, P, L, vpp)
    alive = 0
    peak = 0
    for op in order[0]:
        if op.is_forward:
            alive += 1
            peak = max(peak, alive)
        else:
            alive -= 1
    return peak


def compute():
    results = {}
    for kind, vpp, scale in (
        (ScheduleKind.GPIPE, 1, 1.0),
        (ScheduleKind.ONE_F_ONE_B, 1, 1.0),
        (ScheduleKind.INTERLEAVED, 2, 0.5),
    ):
        sim = PipelineSimulator(P, L, kind, vpp=vpp)
        trace = sim.run_uniform(TF * scale, TB * scale)
        results[(kind, vpp)] = (
            trace.makespan,
            trace.bubble_fraction(),
            peak_in_flight(kind, vpp),
        )
    return results


def test_schedule_ablation(benchmark):
    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    print()
    print(format_table(
        ["schedule", "makespan (s)", "bubble", "peak in-flight mbs @s0"],
        [
            [f"{kind.value} (vpp={vpp})", f"{makespan:.2f}",
             f"{bubble:.3f}", peak]
            for (kind, vpp), (makespan, bubble, peak) in results.items()
        ],
        title=f"Ablation: schedules, p={P}, l={L}",
    ))
    gpipe = results[(ScheduleKind.GPIPE, 1)]
    onefb = results[(ScheduleKind.ONE_F_ONE_B, 1)]
    vpp = results[(ScheduleKind.INTERLEAVED, 2)]
    # Same uniform makespan for GPipe and 1F1B...
    assert gpipe[0] == pytest.approx(onefb[0])
    # ...but GPipe pins the whole batch's activations vs ~p for 1F1B.
    assert gpipe[2] == L
    assert onefb[2] <= P
    # VPP shrinks the warm-up bubble.
    assert vpp[0] < onefb[0]
    assert vpp[1] < onefb[1]
