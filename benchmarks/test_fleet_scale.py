"""Fleet-engine benchmarks at hundred-tenant scale.

The tracked benchmark pins this PR's acceptance criterion: a 100-job,
1000-iteration-per-job fair-share fleet — failures, elastic resizes,
and every orchestration solve from cold plan *and* shared-state caches
— completes end-to-end in about a second, because the batched engine
pops the lagging tenant off an indexed event heap, shares one
plan/simulator/prepared-batch build across the 100 identical tenants
through :data:`~repro.fleet.job.STATE_CACHE`, and prices un-memoized
straggler evaluations in fused cross-tenant kernel sweeps. A second
(non-tracked) benchmark holds the batched engine to >=3x over the
sequential per-tenant reference loop on the same workload — the
speedup the sharing and fusion exist to deliver.
"""

import pytest

from repro.core.config import DistTrainConfig
from repro.core.reports import format_table
from repro.fleet import FleetEngine, FleetSpec
from repro.fleet.job import STATE_CACHE
from repro.orchestration.plancache import PLAN_CACHE
from repro.scenarios import ScenarioSpec

#: Heavyweight fleet evaluations; deselected from the default tier-1
#: run (see pyproject addopts) and exercised by CI's full benchmark job.
pytestmark = pytest.mark.slow

JOB_CONFIG = DistTrainConfig.preset("mllm-9b", 48, 16)

#: Each tenant's dynamics: real failures, elastic shrinking, repairs.
JOB_SCENARIO = ScenarioSpec(
    num_iterations=1000,
    checkpoint_interval=50,
    mtbf_gpu_hours=60.0,
    elastic=True,
    repair_seconds=900.0,
)


def fleet_spec() -> FleetSpec:
    """100 x (48-GPU demand) on 480 shared GPUs: 10x oversubscribed."""
    return FleetSpec.homogeneous(
        JOB_CONFIG,
        cluster_gpus=480,
        num_jobs=100,
        job_gpus=48,
        arrival_spacing_s=120.0,
        priorities=(1, 0),
        policy="fair-share",
        scenario=JOB_SCENARIO,
    )


def cold_fleet(batched: bool):
    # Cold start: every orchestration solve and every shared cluster
    # state build lands inside the measured time.
    PLAN_CACHE.clear()
    STATE_CACHE.clear()
    return FleetEngine(fleet_spec(), batched=batched).run()


def test_fleet_100jobs_1000_iterations(benchmark):
    result = benchmark.pedantic(
        lambda: cold_fleet(batched=True), rounds=1, iterations=1
    )
    metrics = result.metrics()
    print()
    print(format_table(
        ["metric", "value"],
        [
            ["fleet goodput", f"{metrics['fleet_goodput'] * 100:.1f}%"],
            ["utilization", f"{metrics['utilization'] * 100:.1f}%"],
            ["mean JCT", f"{metrics['mean_jct_seconds']:.0f} s"],
            ["failures", int(metrics["num_failures"])],
            ["re-orchestrations", int(metrics["num_replans"])],
            ["plan cache (hit/miss)",
             f"{result.plan_cache_hits}/{result.plan_cache_misses}"],
        ],
        title="100 x 1000-iteration jobs, fair-share on 480 shared GPUs:",
    ))
    # Acceptance criterion: end-to-end around ~1 s at nominal machine
    # speed (the tracked guard enforces the calibrated budget; this
    # bound only catches order-of-magnitude breakage on any machine).
    assert benchmark.stats.stats.mean < 10.0
    # The fleet must actually contend and adapt...
    assert len(result.records) == 100
    assert all(r.result.num_iterations == 1000 for r in result.records)
    assert metrics["num_failures"] > 0
    assert metrics["num_replans"] > 0
    assert 0.0 < metrics["fleet_goodput"] <= 1.0
    assert 0.0 < metrics["utilization"] <= 1.0
    # ...amortize co-tenant planning through the shared cache...
    assert result.plan_cache_hits > result.plan_cache_misses
    # ...and stay seed-deterministic across repeated runs.
    again = FleetEngine(fleet_spec()).run()
    assert again.metrics() == metrics


def test_batched_engine_speedup_over_sequential(benchmark):
    """The batched fast path must hold >=3x over the sequential
    reference loop on the tracked workload (measured ~9x when blessed;
    the margin absorbs machine noise), while returning the identical
    result."""
    import time

    start = time.perf_counter()
    sequential = cold_fleet(batched=False)
    sequential_seconds = time.perf_counter() - start

    batched = benchmark.pedantic(
        lambda: cold_fleet(batched=True), rounds=1, iterations=1
    )
    batched_seconds = benchmark.stats.stats.mean
    speedup = sequential_seconds / batched_seconds
    print(f"\nsequential {sequential_seconds:.2f}s / "
          f"batched {batched_seconds:.2f}s = {speedup:.1f}x")
    assert batched.metrics() == sequential.metrics()
    assert speedup >= 3.0
