"""Table 3 — running time of disaggregated model orchestration.

MLLM-72B at 112-1296 GPUs with the paper's global batch sizes. The
algorithm must complete in well under a second at every scale.
"""

import pytest

from repro.cluster.cluster import make_cluster
from repro.core.reports import format_table
from repro.data.synthetic import SyntheticMultimodalDataset
from repro.models.mllm import MLLM_72B
from repro.orchestration.adaptive import AdaptiveOrchestrator
from repro.orchestration.problem import OrchestrationProblem, SampleProfile

#: Heavyweight figure reproduction; deselected from the default tier-1
#: run (see pyproject addopts) and exercised by CI's full benchmark job.
pytestmark = pytest.mark.slow

# (num_gpus, global_batch_size) rows of Table 3. The paper lists 324
# GPUs for the third row; our cluster model allocates whole 8-GPU nodes,
# so we use 320 (40 nodes) — the overhead scaling is unaffected.
TABLE_3_ROWS = [(1296, 1920), (648, 960), (320, 480), (112, 240)]


@pytest.fixture(scope="module")
def profile():
    return SampleProfile.from_samples(
        SyntheticMultimodalDataset(seed=1).take(128)
    )


def solve_at_scale(num_gpus, gbs, profile):
    problem = OrchestrationProblem(
        mllm=MLLM_72B,
        cluster=make_cluster(num_gpus),
        global_batch_size=gbs,
        profile=profile,
    )
    return AdaptiveOrchestrator(problem).plan()


@pytest.mark.parametrize("num_gpus,gbs", TABLE_3_ROWS)
def test_table3_overhead(benchmark, num_gpus, gbs, profile):
    result = benchmark.pedantic(
        solve_at_scale, args=(num_gpus, gbs, profile), rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["model", "# GPUs", "global batch", "algorithm overhead (ms)"],
        [["MLLM-72B", num_gpus, gbs, f"{result.solve_seconds * 1e3:.0f}"]],
        title="Table 3 row",
    ))
    # Paper: 133-922 ms depending on scale; "under one second".
    assert result.solve_seconds < 2.0
    assert result.plan.num_gpus <= num_gpus
