"""Figure 13 — overall MFU of DistTrain vs Megatron-LM.

Paper-scale: ~1.2k GPUs, GBS 1920. Paper results: DistTrain reaches
51.8-54.7% MFU; Megatron-LM trails by 1.7-2.8x on MLLM-9B/15B and ~1.2x
on MLLM-72B. The headline claim — 54.7% MFU training a 72B MLLM on 1172
GPUs — corresponds to this figure's right-most bars.
"""

import pytest

from benchmarks.conftest import MODELS
from repro.core.reports import format_table


def test_figure13_overall_mfu(benchmark, overall_results):
    rows = benchmark.pedantic(
        lambda: [
            [
                model,
                overall_results[model]["megatron-lm"].num_gpus,
                f"{overall_results[model]['megatron-lm'].mfu * 100:.1f}%",
                overall_results[model]["disttrain"].num_gpus,
                f"{overall_results[model]['disttrain'].mfu * 100:.1f}%",
                f"{overall_results[model]['disttrain'].mfu / overall_results[model]['megatron-lm'].mfu:.2f}x",
            ]
            for model in MODELS
        ],
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(
        ["model", "megatron GPUs", "megatron MFU",
         "disttrain GPUs", "disttrain MFU", "MFU gain"],
        rows,
        title="Figure 13: overall MFU (GBS 1920, <=1296 GPUs)",
    ))

    for model in MODELS:
        ours = overall_results[model]["disttrain"]
        theirs = overall_results[model]["megatron-lm"]
        # DistTrain lands in the high-MFU regime of the paper.
        assert ours.mfu > 0.40
        # Megatron trails everywhere.
        assert ours.mfu > theirs.mfu

    # Shape: the gain is much larger for the small models (their
    # monolithic pipelines waste 2/3 of the GPUs) than for the 72B.
    gain = lambda m: (
        overall_results[m]["disttrain"].mfu
        / overall_results[m]["megatron-lm"].mfu
    )
    assert gain("mllm-9b") > gain("mllm-72b")
    assert 1.1 < gain("mllm-72b") < 2.0  # paper: ~1.2x
    assert gain("mllm-9b") > 1.7  # paper: up to 2.8x
