"""Figure 13 — overall MFU of DistTrain vs Megatron-LM.

Paper-scale: ~1.2k GPUs, GBS 1920. Paper results: DistTrain reaches
51.8-54.7% MFU; Megatron-LM trails by 1.7-2.8x on MLLM-9B/15B and ~1.2x
on MLLM-72B. The headline claim — 54.7% MFU training a 72B MLLM on 1172
GPUs — corresponds to this figure's right-most bars.

Runs through the experiment campaign engine: the grid is declared in
``conftest.py`` and executed in parallel with content-addressed caching,
and the MFU-gain column is a :meth:`ResultFrame.with_ratio` over the
Megatron-LM baseline rows.
"""

import pytest

from benchmarks.conftest import MODELS
from repro.core.reports import format_table

#: Heavyweight figure reproduction; deselected from the default tier-1
#: run (see pyproject addopts) and exercised by CI's full benchmark job.
pytestmark = pytest.mark.slow


def test_figure13_overall_mfu(benchmark, overall_frame):
    frame = benchmark.pedantic(
        lambda: overall_frame.with_ratio(
            "mfu",
            baseline={"system": "megatron-lm"},
            join=("model",),
            name="mfu_gain",
        ),
        rounds=1,
        iterations=1,
    )

    rows = [
        [
            model,
            frame.filter(model=model, system="megatron-lm").value("num_gpus"),
            f"{frame.filter(model=model, system='megatron-lm').value('mfu') * 100:.1f}%",
            frame.filter(model=model, system="disttrain").value("num_gpus"),
            f"{frame.filter(model=model, system='disttrain').value('mfu') * 100:.1f}%",
            f"{frame.filter(model=model, system='disttrain').value('mfu_gain'):.2f}x",
        ]
        for model in MODELS
    ]
    print()
    print(format_table(
        ["model", "megatron GPUs", "megatron MFU",
         "disttrain GPUs", "disttrain MFU", "MFU gain"],
        rows,
        title="Figure 13: overall MFU (GBS 1920, <=1296 GPUs)",
    ))

    gain = lambda m: frame.filter(model=m, system="disttrain").value(
        "mfu_gain"
    )
    for model in MODELS:
        ours = frame.filter(model=model, system="disttrain")
        # DistTrain lands in the high-MFU regime of the paper.
        assert ours.value("mfu") > 0.40
        # Megatron trails everywhere.
        assert gain(model) > 1.0

    # Shape: the gain is much larger for the small models (their
    # monolithic pipelines waste 2/3 of the GPUs) than for the 72B.
    assert gain("mllm-9b") > gain("mllm-72b")
    assert 1.1 < gain("mllm-72b") < 2.0  # paper: ~1.2x
    assert gain("mllm-9b") > 1.7  # paper: up to 2.8x
