"""Figure 5 — data heterogeneity in multimodal LLM training.

(a) text subsequence sizes, (b) image subsequence sizes, (c) image count
per training sample — all highly skewed on the LAION-400M-like stream.
"""

import numpy as np
import pytest

from repro.core.reports import format_table
from repro.data.stats import DatasetStatistics, histogram_density
from repro.data.synthetic import SyntheticMultimodalDataset

#: Heavyweight figure reproduction; deselected from the default tier-1
#: run (see pyproject addopts) and exercised by CI's full benchmark job.
pytestmark = pytest.mark.slow


def compute_figure5(num_samples=2000):
    dataset = SyntheticMultimodalDataset(seed=0)
    stats = DatasetStatistics(dataset.take(num_samples))
    text = np.array(stats.text_subsequence_sizes())
    image = np.array(stats.image_subsequence_sizes())
    counts = np.array(stats.image_counts())
    return stats, text, image, counts


def test_figure5_distributions(benchmark):
    stats, text, image, counts = benchmark.pedantic(
        compute_figure5, rounds=1, iterations=1
    )
    series = [
        ("text subsequence size (tokens)", text, (0, 128)),
        ("image subsequence size (tokens)", image, (0, 4096)),
        ("image subsequences per sample", counts, (0, 32)),
    ]
    print()
    for label, values, support in series:
        centers, density = histogram_density(
            values, bins=8, value_range=support
        )
        rows = [
            [f"{c:.0f}", f"{d:.2e}"] for c, d in zip(centers, density)
        ]
        print(format_table(["bin center", "density"], rows,
                           title=f"Figure 5: {label}"))
        print(f"  mean={values.mean():.1f}  std={values.std():.1f}  "
              f"skew={stats.skewness(values):.2f}")

    # Supports match the paper's axes.
    assert text.max() <= 128
    assert image.max() <= 4096
    assert counts.max() <= 32
    # All three are skewed; image sizes and counts strongly so.
    assert stats.skewness(image) > 0.5
    # Packing to fixed 8K sequences compresses the raw per-document
    # count distribution; residual right-skew remains.
    assert stats.skewness(counts) > 0.05
    # Per-sample sizes carry real straggler potential.
    assert stats.sample_size_cv() > 0.3
