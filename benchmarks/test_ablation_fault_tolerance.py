"""Ablation — fault tolerance: checkpoint interval vs goodput.

DistTrain recovers from failures by reloading the latest asynchronous
checkpoint (sections 3 and 6). At thousand-GPU scale failures are
routine; the checkpoint interval trades steady-state stall (snapshots)
against replay after failures.
"""

import pytest

from repro.core.reports import format_table
from repro.runtime.failure import FailureModel, run_with_failures

ITERATION_SECONDS = 40.0   # MLLM-72B-scale iteration
NUM_ITERATIONS = 800
NUM_GPUS = 1248
INTERVALS = (10, 50, 200, 800)


def sweep():
    failures = FailureModel(mtbf_gpu_hours=30_000.0)
    results = []
    for interval in INTERVALS:
        report = run_with_failures(
            iteration_seconds=ITERATION_SECONDS,
            num_iterations=NUM_ITERATIONS,
            num_gpus=NUM_GPUS,
            failures=failures,
            checkpoint_interval=interval,
            checkpoint_stall=2.0,
            seed=11,
        )
        results.append((interval, report))
    return results


def test_checkpoint_interval_sweep(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["checkpoint every", "failures", "replayed iters", "goodput"],
        [
            [f"{interval} iters", r.num_failures, r.replayed_iterations,
             f"{r.goodput * 100:.1f}%"]
            for interval, r in results
        ],
        title=f"Ablation: fault tolerance at {NUM_GPUS} GPUs, "
              f"{NUM_ITERATIONS} x {ITERATION_SECONDS:.0f}s iterations",
    ))
    by_interval = dict(results)
    # Failures occur at this scale and horizon (~9 hours of training).
    assert by_interval[200].num_failures >= 1
    # Sparse checkpointing replays more work than dense checkpointing.
    assert (
        by_interval[10].replayed_iterations
        <= by_interval[800].replayed_iterations
    )
    # Goodput stays high with a sane interval.
    assert by_interval[50].goodput > 0.90
