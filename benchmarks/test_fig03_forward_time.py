"""Figure 3 — forward time under different input configurations.

One PP stage of Llama3-70B (PP=10, TP=8) vs ViT-Huge vs Stable Diffusion
for {8, 16} images x {512^2, 1024^2} in an 8K sequence. The paper's
takeaway: the LLM stage time is flat across configurations while the
encoder/generator vary wildly and overtake it at high resolution.
"""

import pytest

from repro.cluster.node import AMPERE_NODE
from repro.core.reports import format_table
from repro.models.base import ModuleWorkload
from repro.models.llm import LLAMA3_70B
from repro.models.vit import VIT_HUGE
from repro.models.diffusion import STABLE_DIFFUSION_2_1
from repro.timing.costmodel import ModuleCostModel

CONFIGS = [(8, 512), (8, 1024), (16, 512), (16, 1024)]


def compute_figure3():
    llm_cm = ModuleCostModel(LLAMA3_70B, AMPERE_NODE)
    vit_cm = ModuleCostModel(VIT_HUGE, AMPERE_NODE)
    sd_cm = ModuleCostModel(STABLE_DIFFUSION_2_1, AMPERE_NODE)
    llm_stage_ms = llm_cm.forward_time(ModuleWorkload(samples=1), tp=8) / 10 * 1e3
    rows = []
    for images, resolution in CONFIGS:
        tokens = (resolution // 16) ** 2 * images
        w = ModuleWorkload(samples=1, image_tokens=tokens, images=images)
        rows.append(
            {
                "config": f"{images}, {resolution}x{resolution}",
                "llama3-70b": llm_stage_ms,
                "vit-huge": vit_cm.forward_time(w, tp=8) * 1e3,
                "stable-diffusion": sd_cm.forward_time(w, tp=8) * 1e3,
            }
        )
    return rows


def test_figure3_forward_time(benchmark):
    rows = benchmark.pedantic(compute_figure3, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["config", "Llama3-70B (ms)", "ViT-Huge (ms)", "SD (ms)"],
            [
                [r["config"], f"{r['llama3-70b']:.0f}",
                 f"{r['vit-huge']:.0f}", f"{r['stable-diffusion']:.0f}"]
                for r in rows
            ],
            title="Figure 3: forward time per input configuration (TP=8)",
        )
    )
    # LLM stage flat across configurations.
    llm_times = [r["llama3-70b"] for r in rows]
    assert max(llm_times) == pytest.approx(min(llm_times))
    # Encoder/generator grow strongly with images and resolution.
    assert rows[3]["vit-huge"] > 5 * rows[0]["vit-huge"]
    assert rows[3]["stable-diffusion"] > 5 * rows[0]["stable-diffusion"]
    # At 16 x 1024^2 the multimodal modules overtake the LLM stage.
    assert rows[3]["vit-huge"] > rows[3]["llama3-70b"]
    assert rows[3]["stable-diffusion"] > rows[3]["llama3-70b"]
