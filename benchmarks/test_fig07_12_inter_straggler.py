"""Figures 7 and 12 — inter-microbatch stragglers and Algorithm 2.

Figure 7: a straggler microbatch in the encoder delays every downstream
stage. Figure 12: the 1F1B intervals at the first stage, which Algorithm
2 fills by reordering microbatches within the local batch.
"""

import numpy as np
import pytest

from repro.core.reports import format_table
from repro.reordering.baselines import random_order, sorted_order
from repro.reordering.inter import InterReorderer, MicrobatchCostModel


def build_costs(l=24, p=4, seed=0):
    """Encoder-fronted pipeline with skewed first-stage times."""
    rng = np.random.default_rng(seed)
    fwd = np.ones((l, p)) * 1.0
    fwd[:, 0] = rng.lognormal(0.0, 0.8, l)  # heterogeneous encoder stage
    fwd[:, -1] = rng.lognormal(-0.7, 0.8, l)  # heterogeneous generator
    bwd = 2.0 * fwd
    return MicrobatchCostModel(fwd=fwd, bwd=bwd)


def compute():
    costs = build_costs()
    reorderer = InterReorderer(costs)
    l = costs.num_microbatches
    orders = {
        "descending (adversarial)": sorted_order(
            list(range(l)), size=costs.first_stage_fwd, descending=True
        ),
        "random (Megatron-LM)": random_order(list(range(l)), seed=1),
        "Algorithm 2 (DistTrain)": reorderer.reorder(),
    }
    makespans = {k: reorderer.evaluate(v) for k, v in orders.items()}
    rand_mean = float(np.mean([
        reorderer.evaluate(random_order(list(range(l)), seed=s))
        for s in range(8)
    ]))
    makespans["random (mean of 8 seeds)"] = rand_mean
    return makespans


def test_figure7_12_inter_reordering(benchmark):
    makespans = benchmark.pedantic(compute, rounds=1, iterations=1)
    best = makespans["Algorithm 2 (DistTrain)"]
    print()
    print(format_table(
        ["microbatch order", "pipeline makespan (s)", "vs Algorithm 2"],
        [[k, f"{v:.2f}", f"{v / best:.3f}"] for k, v in makespans.items()],
        title="Figures 7/12: 1F1B makespan under microbatch orderings "
              "(24 mbs, 4 stages)",
    ))
    assert best <= makespans["descending (adversarial)"]
    assert best <= makespans["random (mean of 8 seeds)"] * 1.01
