"""Figure 16 — disaggregated data preprocessing (reordering) ablation.

Both systems use DistTrain's optimal orchestration; the baseline uses
Megatron-LM's random data ordering, DistTrain adds the two-level
reordering. Paper: 1.03-1.11x MFU/throughput, larger gains for smaller
models (higher DP -> more intra-microbatch heterogeneity).
"""

import pytest

from benchmarks.conftest import ABLATION_CLUSTER_GPUS, ABLATION_GBS, MODELS
from repro.core.api import build_simulator, plan
from repro.core.config import DistTrainConfig
from repro.core.reports import format_table
from repro.data.synthetic import SyntheticMultimodalDataset

#: Heavyweight figure reproduction; deselected from the default tier-1
#: run (see pyproject addopts) and exercised by CI's full benchmark job.
pytestmark = pytest.mark.slow


def run_reordering_ablation():
    rows = {}
    for model in MODELS:
        config = DistTrainConfig.preset(
            model, ABLATION_CLUSTER_GPUS, ABLATION_GBS[model]
        )
        orchestration = plan(config)
        batch = SyntheticMultimodalDataset(seed=4).take(
            config.global_batch_size
        )
        with_reorder = build_simulator(config, orchestration).simulate(batch)
        without = build_simulator(
            config.with_(intra_reordering=False, inter_reordering=False),
            orchestration,
        ).simulate(batch)
        rows[model] = (without, with_reorder)
    return rows


def test_figure16_reordering_ablation(benchmark):
    rows = benchmark.pedantic(run_reordering_ablation, rounds=1, iterations=1)
    print()
    print(format_table(
        ["model", "random order MFU", "reordered MFU", "MFU gain",
         "tput gain"],
        [
            [
                model,
                f"{base.mfu * 100:.1f}%",
                f"{ours.mfu * 100:.1f}%",
                f"{ours.mfu / base.mfu:.3f}x",
                f"{ours.throughput_tokens_per_s / base.throughput_tokens_per_s:.3f}x",
            ]
            for model, (base, ours) in rows.items()
        ],
        title="Figure 16: data reordering ablation (<=96 GPUs)",
    ))
    for model, (base, ours) in rows.items():
        # Reordering never hurts and gives the paper's few-percent gain.
        assert ours.mfu >= base.mfu * 0.995
    gains = {
        model: ours.mfu / base.mfu for model, (base, ours) in rows.items()
    }
    # At least one model shows a measurable (>1%) improvement.
    assert max(gains.values()) > 1.01
