"""Ablation — convex relaxation vs exhaustive resource enumeration.

The paper replaces the combinatorial search with per-candidate convex
subproblems (section 4.3). This ablation verifies, on a small cluster
where brute force is tractable, that the relaxed-then-rounded optimum
matches exhaustive enumeration of integer (x, y, z) splits.
"""

import numpy as np
import pytest

from repro.cluster.cluster import make_cluster
from repro.core.reports import format_table
from repro.data.synthetic import SyntheticMultimodalDataset
from repro.models.mllm import MLLM_9B
from repro.orchestration.adaptive import AdaptiveOrchestrator
from repro.orchestration.convex import solve_resource_split
from repro.orchestration.formulation import CandidateConfig, objective
from repro.orchestration.problem import OrchestrationProblem, SampleProfile

#: Heavyweight figure reproduction; deselected from the default tier-1
#: run (see pyproject addopts) and exercised by CI's full benchmark job.
pytestmark = pytest.mark.slow


def make_problem(num_gpus):
    profile = SampleProfile.from_samples(
        SyntheticMultimodalDataset(seed=1).take(128)
    )
    return OrchestrationProblem(
        mllm=MLLM_9B,
        cluster=make_cluster(num_gpus),
        global_batch_size=32,
        profile=profile,
    )


@pytest.fixture(scope="module")
def problem():
    return make_problem(32)


def exhaustive_best(problem, candidate):
    """Brute-force the integer (x, y, z) split for one candidate."""
    budget = problem.num_gpus
    per_pipeline = candidate.tp_lm * candidate.dp_lm
    best = np.inf
    for pp in (1, 2, 4, 8):
        y = per_pipeline * pp
        if y >= budget:
            continue
        for x in range(1, budget - y):
            z = budget - y - x
            if z < 1:
                continue
            value = objective(
                problem, candidate, float(x), float(y), float(z)
            ).total
            best = min(best, value)
    return best


def compare(problem):
    candidate = CandidateConfig(tp_lm=4, dp_lm=4, tp_me=1, tp_mg=1)
    brute = exhaustive_best(problem, candidate)

    from repro.orchestration.formulation import module_sample_time

    M = problem.microbatch_size
    dp = candidate.dp_lm
    c_lm = module_sample_time(problem, "llm", candidate.tp_lm)
    c_me = module_sample_time(problem, "encoder", 1)
    c_mg = module_sample_time(problem, "generator", 1)
    solution = solve_resource_split(
        warm_x=dp * M * c_me,
        warm_z=dp * M * c_mg,
        steady_x=dp * M * c_me,
        steady_y=dp * candidate.tp_lm * M * c_lm,
        steady_z=dp * M * c_mg,
        num_microbatches=problem.global_batch_size // (dp * M),
        budget=float(problem.num_gpus),
    )
    relaxed = solution.objective
    return brute, relaxed, solution


def test_convex_matches_enumeration(benchmark, problem):
    """The relaxation lower-bounds the integer optimum of its candidate;
    the full adaptive search (enumerating TP/DP candidates on top of the
    convex solve) matches or beats single-candidate brute force once the
    cluster is large enough for fine-grained rounding."""
    def run_all():
        rows = {}
        for gpus in (32, 96):
            prob = make_problem(gpus)
            brute, relaxed, _ = compare(prob)
            full = AdaptiveOrchestrator(prob).plan().breakdown.total
            rows[gpus] = (brute, relaxed, full)
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(format_table(
        ["cluster", "enumeration tp4/dp4 (s)", "convex bound (s)",
         "full adaptive (s)"],
        [
            [f"{gpus} GPUs", f"{brute:.3f}", f"{relaxed:.3f}",
             f"{full:.3f}"]
            for gpus, (brute, relaxed, full) in rows.items()
        ],
        title="Ablation: convex relaxation vs exhaustive enumeration",
    ))
    for gpus, (brute, relaxed, full) in rows.items():
        # Valid lower bound at every scale.
        assert relaxed <= brute + 1e-9
        # Coarse-grained rounding costs at most ~2x of the bound here.
        assert brute / relaxed < 2.0
    # At 96 GPUs the full algorithm (larger candidate set) beats the
    # single-candidate exhaustive enumeration.
    brute_l, _, full_l = rows[96]
    assert full_l <= brute_l + 1e-9


def test_adaptive_orchestrator_near_relaxation(problem):
    """The full adaptive pipeline (with rounding) stays near its own
    convex bound."""
    result = AdaptiveOrchestrator(problem).plan()
    assert result.plan.num_gpus <= problem.num_gpus
    assert result.breakdown.total > 0
