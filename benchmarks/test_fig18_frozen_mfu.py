"""Figure 18 — MFU under the four frozen-training settings.

(a) all modules frozen (projectors only), (b) encoder-only training,
(c) LLM-only training, (d) generator-only training. Paper: DistTrain
beats Megatron-LM by 1.4-2.9x MFU in every setting.
"""

import pytest

from benchmarks.conftest import FROZEN_SETTINGS, MODELS
from repro.core.reports import format_table

#: Heavyweight figure reproduction; deselected from the default tier-1
#: run (see pyproject addopts) and exercised by CI's full benchmark job.
pytestmark = pytest.mark.slow


def test_figure18_frozen_mfu(benchmark, frozen_results):
    rows = benchmark.pedantic(
        lambda: [
            [
                setting,
                model,
                f"{frozen_results[setting][model]['megatron-lm'].mfu * 100:.1f}%",
                f"{frozen_results[setting][model]['disttrain'].mfu * 100:.1f}%",
                f"{frozen_results[setting][model]['disttrain'].mfu / frozen_results[setting][model]['megatron-lm'].mfu:.2f}x",
            ]
            for setting in FROZEN_SETTINGS
            for model in MODELS
        ],
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(
        ["setting", "model", "megatron MFU", "disttrain MFU", "gain"],
        rows,
        title="Figure 18: MFU under frozen training (<=96 GPUs)",
    ))
    for setting in FROZEN_SETTINGS:
        for model in MODELS:
            runs = frozen_results[setting][model]
            gain = runs["disttrain"].mfu / runs["megatron-lm"].mfu
            # Paper band: 1.4-2.9x; we accept >=1.2x everywhere and
            # require the band's center for at least one small model.
            assert gain > 1.2
        small_gain = (
            frozen_results[setting]["mllm-9b"]["disttrain"].mfu
            / frozen_results[setting]["mllm-9b"]["megatron-lm"].mfu
        )
        assert small_gain > 1.4
