"""Golden snapshots: the failure model and one canonical scenario.

Fixtures live in ``tests/scenarios/golden`` with every float serialized
as a C99 hex string — the comparison refuses a single ULP of drift. Any
intentional semantics change must re-bless them via::

    PYTHONPATH=src python -m tests.scenarios.golden.regen
"""

import json

import pytest

from tests.scenarios.golden.regen import (
    GOLDEN_DIR,
    goodput_cases,
    goodput_fixture,
    scenario_fixture,
)


def load_fixture(name: str) -> dict:
    path = GOLDEN_DIR / f"{name}.json"
    assert path.exists(), (
        f"missing golden fixture {path}; run "
        f"PYTHONPATH=src python -m tests.scenarios.golden.regen"
    )
    return json.loads(path.read_text())


@pytest.mark.parametrize(
    "name,kwargs", goodput_cases(), ids=[c[0] for c in goodput_cases()]
)
def test_run_with_failures_matches_golden(name, kwargs):
    expected = load_fixture(name)
    actual = goodput_fixture(name, kwargs)
    assert actual == expected


def test_goodput_fixtures_exercise_failures():
    # The flaky canonical case must actually fail (otherwise the
    # snapshot would not pin the rollback arithmetic).
    flaky = load_fixture("run_with_failures_flaky")
    assert flaky["num_failures"] > 0
    assert flaky["replayed_iterations"] > 0


def test_canonical_scenario_matches_golden():
    expected = load_fixture("scenario_canonical")
    actual = scenario_fixture()
    assert actual["metrics"] == expected["metrics"]
    assert actual["iteration_times"] == expected["iteration_times"]
    assert actual["mfu_trajectory"] == expected["mfu_trajectory"]
    assert actual["events"] == expected["events"]
    assert actual == expected


def test_canonical_scenario_exercises_dynamics():
    # The canonical fixture must cover a failure, an elastic shrink AND
    # the repair re-growth, and straggler episodes.
    fixture = load_fixture("scenario_canonical")
    assert fixture["num_failures"] >= 1
    assert fixture["num_replans"] >= 2
    assert fixture["min_gpus"] < fixture["final_gpus"]
    kinds = {event["kind"] for event in fixture["events"]}
    assert kinds == {"failure", "straggler"}
