"""Regenerate the golden scenario fixtures.

Run after an *intentional* semantics change to the failure/goodput model
or the scenario engine::

    PYTHONPATH=src python -m tests.scenarios.golden.regen

Two fixture families, mirroring ``tests/pipeline/golden``:

* ``run_with_failures_*.json`` — the legacy goodput model on fixed
  canonical inputs;
* ``scenario_canonical.json`` — one failure + straggler + elastic
  scenario through the full engine.

All floats serialize as C99 hex strings so the comparison is bit-exact:
any change that perturbs a single ULP of any metric fails the snapshot
suite and must be re-blessed here.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.config import DistTrainConfig
from repro.runtime.failure import FailureModel, run_with_failures
from repro.scenarios import ScenarioSpec, run_scenario

GOLDEN_DIR = Path(__file__).resolve().parent


def goodput_cases():
    """(name, run_with_failures kwargs) canonical cases."""
    return [
        (
            "run_with_failures_flaky",
            dict(
                iteration_seconds=1.5,
                num_iterations=200,
                num_gpus=1000,
                failures=FailureModel(
                    mtbf_gpu_hours=50.0, restart_seconds=60.0
                ),
                checkpoint_interval=50,
                checkpoint_stall=2.0,
                seed=3,
            ),
        ),
        (
            "run_with_failures_calm",
            dict(
                iteration_seconds=0.8,
                num_iterations=120,
                num_gpus=64,
                failures=FailureModel(mtbf_gpu_hours=5000.0),
                checkpoint_interval=25,
                seed=11,
            ),
        ),
    ]


def scenario_case():
    """The canonical failure + straggler + elastic scenario."""
    config = DistTrainConfig.preset("mllm-9b", 48, 16)
    spec = ScenarioSpec(
        num_iterations=400,
        checkpoint_interval=20,
        mtbf_gpu_hours=3.0,
        restart_seconds=60.0,
        checkpoint_load_seconds=30.0,
        straggler_rate=0.03,
        straggler_slowdown=1.8,
        elastic=True,
        repair_seconds=400.0,
        seed=5,
    )
    return config, spec


def goodput_fixture(name, kwargs):
    report = run_with_failures(**kwargs)
    failures = kwargs["failures"]
    return {
        "name": name,
        "inputs": {
            "iteration_seconds": kwargs["iteration_seconds"],
            "num_iterations": kwargs["num_iterations"],
            "num_gpus": kwargs["num_gpus"],
            "mtbf_gpu_hours": failures.mtbf_gpu_hours,
            "restart_seconds": failures.restart_seconds,
            "checkpoint_load_seconds": failures.checkpoint_load_seconds,
            "checkpoint_interval": kwargs.get("checkpoint_interval", 50),
            "checkpoint_stall": kwargs.get("checkpoint_stall", 2.0),
            "seed": kwargs.get("seed", 0),
        },
        "total_seconds": report.total_seconds.hex(),
        "useful_seconds": report.useful_seconds.hex(),
        "goodput": report.goodput.hex(),
        "num_failures": report.num_failures,
        "replayed_iterations": report.replayed_iterations,
    }


def scenario_fixture():
    config, spec = scenario_case()
    result = run_scenario(config, spec)
    metrics = {
        key: (value.hex() if isinstance(value, float) else value)
        for key, value in result.metrics().items()
    }
    return {
        "name": "scenario_canonical",
        "metrics": metrics,
        "goodput": result.goodput.hex(),
        "num_failures": result.num_failures,
        "replayed_iterations": result.replayed_iterations,
        "num_replans": result.num_replans,
        "min_gpus": result.min_gpus,
        "final_gpus": result.final_gpus,
        "iteration_times": [
            float(t).hex() for t in result.iteration_times
        ],
        "mfu_trajectory": [float(m).hex() for m in result.mfu_trajectory],
        "events": result.events.to_dicts(),
    }


def main() -> None:
    for name, kwargs in goodput_cases():
        fixture = goodput_fixture(name, kwargs)
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(fixture, indent=1) + "\n")
        print(f"wrote {path}")
    fixture = scenario_fixture()
    path = GOLDEN_DIR / "scenario_canonical.json"
    path.write_text(json.dumps(fixture, indent=1) + "\n")
    print(f"wrote {path} ({len(fixture['events'])} events)")


if __name__ == "__main__":
    main()
