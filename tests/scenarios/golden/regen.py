"""Regenerate (or check) the golden scenario fixtures.

Run after an *intentional* semantics change to the failure/goodput model
or the scenario engine::

    PYTHONPATH=src python -m tests.scenarios.golden.regen

or verify that every fixture on disk matches what the current code
produces, byte for byte (the CI replay-smoke step)::

    PYTHONPATH=src python -m tests.scenarios.golden.regen --check

Three fixture families, mirroring ``tests/pipeline/golden``:

* ``run_with_failures_*.json`` — the legacy goodput model on fixed
  canonical inputs;
* ``scenario_canonical.json`` — one failure + straggler + elastic
  scenario through the full engine;
* ``packs/pack_*.json`` — every shipped scenario pack expanded on the
  canonical task (arrivals, class mix, SLOs, and each job's full v2
  event trace — the pack's replayable golden trace).

All floats serialize as C99 hex strings (or exact JSON ``repr`` floats
for pack workload documents) so the comparison is bit-exact: any change
that perturbs a single ULP of any metric fails the snapshot suite and
must be re-blessed here.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.core.config import DistTrainConfig
from repro.runtime.failure import FailureModel, run_with_failures
from repro.scenarios import PACKS, ScenarioSpec, run_scenario

GOLDEN_DIR = Path(__file__).resolve().parent
PACK_GOLDEN_DIR = GOLDEN_DIR / "packs"

#: The canonical pack-expansion case every shipped pack is pinned on.
PACK_CASE = dict(cluster_gpus=96, num_jobs=6, seed=0)


def pack_case_inputs():
    """(task config, base scenario) for the pack golden fixtures."""
    config = DistTrainConfig.preset("mllm-9b", 48, 16)
    scenario = ScenarioSpec(
        num_iterations=60,
        checkpoint_interval=20,
        restart_seconds=60.0,
        checkpoint_load_seconds=30.0,
        elastic=True,
        repair_seconds=400.0,
    )
    return config, scenario


def goodput_cases():
    """(name, run_with_failures kwargs) canonical cases."""
    return [
        (
            "run_with_failures_flaky",
            dict(
                iteration_seconds=1.5,
                num_iterations=200,
                num_gpus=1000,
                failures=FailureModel(
                    mtbf_gpu_hours=50.0, restart_seconds=60.0
                ),
                checkpoint_interval=50,
                checkpoint_stall=2.0,
                seed=3,
            ),
        ),
        (
            "run_with_failures_calm",
            dict(
                iteration_seconds=0.8,
                num_iterations=120,
                num_gpus=64,
                failures=FailureModel(mtbf_gpu_hours=5000.0),
                checkpoint_interval=25,
                seed=11,
            ),
        ),
    ]


def scenario_case():
    """The canonical failure + straggler + elastic scenario."""
    config = DistTrainConfig.preset("mllm-9b", 48, 16)
    spec = ScenarioSpec(
        num_iterations=400,
        checkpoint_interval=20,
        mtbf_gpu_hours=3.0,
        restart_seconds=60.0,
        checkpoint_load_seconds=30.0,
        straggler_rate=0.03,
        straggler_slowdown=1.8,
        elastic=True,
        repair_seconds=400.0,
        seed=5,
    )
    return config, spec


def goodput_fixture(name, kwargs):
    report = run_with_failures(**kwargs)
    failures = kwargs["failures"]
    return {
        "name": name,
        "inputs": {
            "iteration_seconds": kwargs["iteration_seconds"],
            "num_iterations": kwargs["num_iterations"],
            "num_gpus": kwargs["num_gpus"],
            "mtbf_gpu_hours": failures.mtbf_gpu_hours,
            "restart_seconds": failures.restart_seconds,
            "checkpoint_load_seconds": failures.checkpoint_load_seconds,
            "checkpoint_interval": kwargs.get("checkpoint_interval", 50),
            "checkpoint_stall": kwargs.get("checkpoint_stall", 2.0),
            "seed": kwargs.get("seed", 0),
        },
        "total_seconds": report.total_seconds.hex(),
        "useful_seconds": report.useful_seconds.hex(),
        "goodput": report.goodput.hex(),
        "num_failures": report.num_failures,
        "replayed_iterations": report.replayed_iterations,
    }


def scenario_fixture():
    config, spec = scenario_case()
    result = run_scenario(config, spec)
    metrics = {
        key: (value.hex() if isinstance(value, float) else value)
        for key, value in result.metrics().items()
    }
    return {
        "name": "scenario_canonical",
        "metrics": metrics,
        "goodput": result.goodput.hex(),
        "num_failures": result.num_failures,
        "replayed_iterations": result.replayed_iterations,
        "num_replans": result.num_replans,
        "min_gpus": result.min_gpus,
        "final_gpus": result.final_gpus,
        "iteration_times": [
            float(t).hex() for t in result.iteration_times
        ],
        "mfu_trajectory": [float(m).hex() for m in result.mfu_trajectory],
        "events": result.events.to_dicts(),
    }


def pack_fixture(pack):
    """One shipped pack's replayable golden workload document."""
    config, scenario = pack_case_inputs()
    return pack.materialize(config, scenario=scenario, **PACK_CASE)


def all_fixtures():
    """Every (path, serialized text) pair this script owns."""
    pairs = []
    for name, kwargs in goodput_cases():
        fixture = goodput_fixture(name, kwargs)
        pairs.append(
            (GOLDEN_DIR / f"{name}.json",
             json.dumps(fixture, indent=1) + "\n")
        )
    fixture = scenario_fixture()
    pairs.append(
        (GOLDEN_DIR / "scenario_canonical.json",
         json.dumps(fixture, indent=1) + "\n")
    )
    for name in sorted(PACKS):
        fixture = pack_fixture(PACKS[name])
        pairs.append(
            (PACK_GOLDEN_DIR / f"pack_{name}.json",
             json.dumps(fixture, indent=1) + "\n")
        )
    return pairs


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    check = "--check" in argv
    PACK_GOLDEN_DIR.mkdir(exist_ok=True)
    stale = []
    for path, text in all_fixtures():
        if check:
            on_disk = (
                path.read_text(encoding="utf-8")
                if path.exists()
                else None
            )
            if on_disk != text:
                stale.append(path)
                print(f"STALE {path}")
            else:
                print(f"ok    {path}")
        else:
            path.write_text(text, encoding="utf-8")
            print(f"wrote {path}")
    if stale:
        print(
            f"{len(stale)} fixture(s) diverge from the current code; "
            "re-bless with: PYTHONPATH=src python -m "
            "tests.scenarios.golden.regen"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
