"""Behavioral tests of the dynamic-cluster scenario engine."""

import numpy as np
import pytest

from repro.runtime.manager import DistTrainManager
from repro.scenarios import (
    EventTrace,
    FailureEvent,
    ResizeEvent,
    ScenarioSpec,
    StragglerEvent,
    run_scenario,
)
from tests.scenarios.conftest import FAST_RECOVERY


class TestCalmScenarios:
    def test_zero_event_goodput_near_one(self, small_config):
        result = run_scenario(small_config, ScenarioSpec(num_iterations=100))
        assert result.num_failures == 0
        assert result.replayed_iterations == 0
        assert result.recovery_seconds == 0.0
        assert 0.98 < result.goodput <= 1.0
        assert result.final_gpus == small_config.cluster.num_gpus

    def test_trajectories_cover_every_iteration(self, small_config):
        result = run_scenario(small_config, ScenarioSpec(num_iterations=64))
        assert result.iteration_times.shape == (64,)
        assert result.mfu_trajectory.shape == (64,)
        assert np.all(result.iteration_times > 0)
        assert np.all(result.mfu_trajectory > 0)

    def test_sample_tiling_repeats_batches(self, small_config):
        result = run_scenario(
            small_config, ScenarioSpec(num_iterations=12, sample_iterations=3)
        )
        times = result.iteration_times
        assert np.array_equal(times[:3], times[3:6])
        assert np.array_equal(times[:3], times[9:12])


class TestFailures:
    def test_explicit_failure_rolls_back(self, small_config):
        # One failure well into the run: work since the last checkpoint
        # replays and the clock pays the downtime.
        spec = ScenarioSpec(
            num_iterations=60,
            checkpoint_interval=20,
            events=EventTrace([FailureEvent(time_s=70.0)]),
            **FAST_RECOVERY,
        )
        result = run_scenario(small_config, spec)
        assert result.num_failures == 1
        assert result.replayed_iterations > 0
        assert result.recovery_seconds == pytest.approx(90.0)
        assert result.lost_seconds > 0
        assert result.goodput < 1.0

    def test_failure_respects_durable_checkpoints(self, small_config):
        # Checkpoint every 10 iterations: a failure never replays more
        # than 10 iterations plus the one in flight.
        spec = ScenarioSpec(
            num_iterations=50,
            checkpoint_interval=10,
            events=EventTrace([FailureEvent(time_s=50.0)]),
            **FAST_RECOVERY,
        )
        result = run_scenario(small_config, spec)
        assert 0 < result.replayed_iterations <= 10

    def test_divergent_scenario_raises(self, small_config):
        # Downtime far beyond the MTBF: the run can never finish.
        spec = ScenarioSpec(
            num_iterations=50,
            mtbf_gpu_hours=0.001,
            restart_seconds=10_000.0,
        )
        with pytest.raises(RuntimeError, match="failures"):
            run_scenario(small_config, spec)


class TestStragglers:
    def test_straggler_window_slows_iterations(self, small_config):
        calm = run_scenario(small_config, ScenarioSpec(num_iterations=20))
        slowed = run_scenario(
            small_config,
            ScenarioSpec(
                num_iterations=20,
                events=EventTrace([
                    StragglerEvent(
                        iteration=5, duration_iterations=5, rank=0,
                        slowdown=3.0,
                    )
                ]),
            ),
        )
        inside = slice(5, 10)
        outside = list(range(5)) + list(range(10, 20))
        assert np.all(
            slowed.iteration_times[inside] > calm.iteration_times[inside]
        )
        assert np.array_equal(
            slowed.iteration_times[outside], calm.iteration_times[outside]
        )

    def test_straggler_rank_wraps_across_cluster_sizes(self, small_config):
        # Rank indices beyond the simulated-rank count are wrapped, so
        # traces recorded on one cluster stay valid on another.
        spec = ScenarioSpec(
            num_iterations=10,
            events=EventTrace([
                StragglerEvent(
                    iteration=0, duration_iterations=10, rank=10_000,
                    slowdown=2.0,
                )
            ]),
        )
        calm = run_scenario(small_config, ScenarioSpec(num_iterations=10))
        result = run_scenario(small_config, spec)
        assert np.all(result.iteration_times >= calm.iteration_times)
        assert result.iteration_times.mean() > calm.iteration_times.mean()


class TestElastic:
    def test_elastic_failure_shrinks_cluster(self, small_config):
        spec = ScenarioSpec(
            num_iterations=40,
            elastic=True,
            events=EventTrace([FailureEvent(time_s=20.0, gpus_lost=8)]),
            repair_seconds=1e9,  # capacity never returns
            **FAST_RECOVERY,
        )
        result = run_scenario(small_config, spec)
        assert result.num_failures == 1
        assert result.num_replans == 1
        assert result.final_gpus == 40
        assert result.min_gpus == 40

    def test_repair_restores_full_capacity(self, small_config):
        spec = ScenarioSpec(
            num_iterations=60,
            elastic=True,
            events=EventTrace([FailureEvent(time_s=20.0, gpus_lost=8)]),
            repair_seconds=10.0,
            **FAST_RECOVERY,
        )
        result = run_scenario(small_config, spec)
        assert result.min_gpus == 40
        assert result.final_gpus == 48
        assert result.num_replans == 2  # shrink + regrow

    def test_degraded_iterations_run_slower(self, small_config):
        spec = ScenarioSpec(
            num_iterations=40,
            elastic=True,
            events=EventTrace([FailureEvent(time_s=20.0, gpus_lost=8)]),
            repair_seconds=1e9,
            **FAST_RECOVERY,
        )
        degraded = run_scenario(small_config, spec)
        calm = run_scenario(small_config, ScenarioSpec(num_iterations=40))
        # Iterations after the shrink take at least as long as at full
        # size (fewer GPUs, same work).
        assert (
            degraded.iteration_times[-1] >= calm.iteration_times[-1]
        )

    def test_planned_resize_is_graceful(self, small_config):
        spec = ScenarioSpec(
            num_iterations=30,
            events=EventTrace([ResizeEvent(iteration=10, num_gpus=40)]),
        )
        result = run_scenario(small_config, spec)
        assert result.num_failures == 0
        assert result.replayed_iterations == 0
        assert result.num_replans == 1
        assert result.final_gpus == 40
        # Only the modeled replan pause is charged.
        assert result.recovery_seconds == pytest.approx(
            ScenarioSpec().replan_seconds
        )


class TestMetricsSurface:
    def test_metrics_keys_for_result_frame(self, small_config):
        result = run_scenario(small_config, ScenarioSpec(num_iterations=10))
        metrics = result.metrics()
        for key in (
            "goodput", "availability", "num_failures", "recovery_seconds",
            "mfu", "throughput_tokens_per_s", "iteration_time", "num_gpus",
        ):
            assert key in metrics
        assert all(isinstance(v, float) for v in metrics.values())

    def test_manager_runs_scenarios(self, small_config):
        manager = DistTrainManager(small_config)
        result = manager.run_scenario(ScenarioSpec(num_iterations=8))
        assert result.num_iterations == 8
        assert manager._initialization is not None
        assert 0 < result.mean_mfu < 1
