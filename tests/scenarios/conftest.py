"""Shared scenario-test fixtures.

The engine tests all run the same small task (9B model, 48 GPUs, GBS
16): small enough that planning + a few hundred simulated iterations
take tens of milliseconds, big enough to have real DP ranks for
straggler injection and enough nodes to shed one elastically.
"""

import pytest

from repro.core.config import DistTrainConfig

#: Downtime-light failure settings so aggressive-MTBF tests converge.
FAST_RECOVERY = dict(restart_seconds=60.0, checkpoint_load_seconds=30.0)


@pytest.fixture(scope="session")
def small_config() -> DistTrainConfig:
    return DistTrainConfig.preset("mllm-9b", 48, 16)
