"""Replan-cache correctness: caching never changes scenario physics.

A failure/repair oscillation visits the same cluster sizes repeatedly;
the process-wide plan cache must make that cheaper without perturbing a
single metric byte, and the hit/miss counters on
:class:`~repro.scenarios.engine.ScenarioResult` must account for every
orchestration the timeline needed.
"""

import numpy as np
import pytest

from repro.orchestration.plancache import (
    PLAN_CACHE,
    PlanCache,
    planning_signature,
)
from repro.scenarios import EventTrace, ScenarioSpec
from repro.scenarios.engine import ScenarioEngine
from repro.scenarios.events import FailureEvent

from tests.scenarios.conftest import FAST_RECOVERY


def oscillation_spec() -> ScenarioSpec:
    """fail -> shrink -> repair -> re-grow -> fail -> shrink again.

    Two explicit failures with a repair window between them, elastic
    scheduling on: the engine plans the full cluster, the shrunken
    cluster, the full cluster again (repair), and the shrunken cluster
    again — only two *distinct* sizes.
    """
    return ScenarioSpec(
        num_iterations=40,
        checkpoint_interval=10,
        elastic=True,
        repair_seconds=120.0,
        replan_seconds=5.0,
        events=EventTrace([
            FailureEvent(time_s=30.0),
            FailureEvent(time_s=160.0),
        ]),
        **FAST_RECOVERY,
    )


def snapshot(result):
    """Everything that must not depend on caching."""
    return (
        result.metrics(),
        result.iteration_times.tobytes(),
        result.mfu_trajectory.tobytes(),
        [repr(e) for e in result.events],
    )


class TestCacheTransparency:
    def test_cache_on_off_byte_identical(self, small_config):
        spec = oscillation_spec()
        PLAN_CACHE.clear()
        cached = ScenarioEngine(
            small_config, spec, use_plan_cache=True
        ).run()
        uncached = ScenarioEngine(
            small_config, spec, use_plan_cache=False
        ).run()
        assert snapshot(cached) == snapshot(uncached)

    def test_oscillation_hit_counts(self, small_config):
        spec = oscillation_spec()
        PLAN_CACHE.clear()
        first = ScenarioEngine(small_config, spec).run()
        # shrink -> re-grow -> shrink again: three membership changes
        # over just two distinct cluster sizes.
        assert first.num_replans == 3
        assert first.min_gpus == 40 and first.initial_gpus == 48
        # Each distinct size is solved exactly once; every further plan
        # need (the elastic feasibility probe, the repair re-growth, the
        # second shrink) is a cache hit.
        assert first.plan_cache_misses == 2
        assert first.plan_cache_hits == 4

        # A second engine (fresh per-size state, same process) finds
        # every plan already cached.
        second = ScenarioEngine(small_config, spec).run()
        assert second.plan_cache_misses == 0
        assert second.plan_cache_hits == 6
        assert snapshot(first) == snapshot(second)

    def test_cache_off_counts_every_solve_as_miss(self, small_config):
        spec = oscillation_spec()
        result = ScenarioEngine(
            small_config, spec, use_plan_cache=False
        ).run()
        # Distinct sizes are still memoized per engine (state table),
        # but nothing comes from (or goes into) the process cache.
        assert result.plan_cache_misses == 2
        hits, misses = PLAN_CACHE.stats()
        before = (hits, misses)
        ScenarioEngine(small_config, spec, use_plan_cache=False).run()
        assert PLAN_CACHE.stats() == before


class TestPlanCacheUnit:
    def test_counts_and_eviction(self):
        cache = PlanCache(maxsize=2)
        calls = []

        def compute(v):
            return lambda: calls.append(v) or v

        assert cache.get_or_compute("a", compute(1)) == 1
        assert cache.get_or_compute("a", compute(99)) == 1
        assert cache.stats() == (1, 1)
        cache.get_or_compute("b", compute(2))
        cache.get_or_compute("c", compute(3))  # evicts "a" (FIFO)
        assert cache.lookup("a") is None
        assert len(cache) == 2

    def test_fetch_reports_hit_flag(self):
        cache = PlanCache()
        assert cache.fetch("k", lambda: 7) == (7, False)
        assert cache.fetch("k", lambda: 99) == (7, True)
        assert cache.stats() == (1, 1)

    def test_fetch_per_call_bypass(self):
        cache = PlanCache()
        cache.fetch("k", lambda: 7)
        # A bypassed call neither reads nor writes nor counts — and
        # does not disturb other users of the same cache.
        assert cache.fetch("k", lambda: 99, bypass=True) == (99, False)
        assert cache.stats() == (0, 1)
        assert cache.fetch("k", lambda: 5) == (7, True)

    def test_failed_compute_not_cached(self):
        cache = PlanCache()

        def boom():
            raise RuntimeError("infeasible")

        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", boom)
        assert cache.lookup("k") is None
        # The miss was never recorded for a failed solve.
        assert cache.stats() == (0, 0)

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)

    def test_planning_signature_tracks_config_and_size(self, small_config):
        a = planning_signature(small_config, 48)
        b = planning_signature(small_config, 40)
        c = planning_signature(small_config.with_(global_batch_size=32), 48)
        assert a != b and a != c
        assert a == planning_signature(small_config, 48)


class TestReplanCachedAtApiLevel:
    def test_api_replan_hits_cache(self, small_config):
        from repro.core import api

        PLAN_CACHE.clear()
        first = api.replan(small_config, 40)
        hits0, misses0 = PLAN_CACHE.stats()
        again = api.replan(small_config, 40)
        assert again is first
        assert PLAN_CACHE.stats() == (hits0 + 1, misses0)
