"""Event model and trace-schema tests."""

import pytest

from repro.scenarios.events import (
    DomainFailureEvent,
    EventTrace,
    FailureEvent,
    MaintenanceEvent,
    ResizeEvent,
    SpotReclaimEvent,
    StragglerEvent,
)


class TestEventValidation:
    def test_failure_rejects_negative_time(self):
        with pytest.raises(ValueError):
            FailureEvent(time_s=-1.0)

    def test_failure_rejects_zero_gpus(self):
        with pytest.raises(ValueError):
            FailureEvent(time_s=0.0, gpus_lost=0)

    def test_straggler_rejects_speedup(self):
        with pytest.raises(ValueError):
            StragglerEvent(
                iteration=0, duration_iterations=5, rank=0, slowdown=0.9
            )

    def test_straggler_rejects_empty_window(self):
        with pytest.raises(ValueError):
            StragglerEvent(
                iteration=0, duration_iterations=0, rank=0, slowdown=1.5
            )

    def test_straggler_end_iteration(self):
        episode = StragglerEvent(
            iteration=10, duration_iterations=5, rank=2, slowdown=2.0
        )
        assert episode.end_iteration == 15

    def test_resize_rejects_zero_gpus(self):
        with pytest.raises(ValueError):
            ResizeEvent(iteration=1, num_gpus=0)

    def test_domain_failure_needs_a_domain(self):
        with pytest.raises(ValueError):
            DomainFailureEvent(time_s=10.0, domain="")
        with pytest.raises(ValueError):
            DomainFailureEvent(time_s=-1.0, domain="rack0")

    def test_spot_reclaim_rejects_bad_window(self):
        with pytest.raises(ValueError):
            SpotReclaimEvent(time_s=10.0, gpus=0)
        with pytest.raises(ValueError):
            SpotReclaimEvent(time_s=10.0, gpus=8, duration_s=0.0)

    def test_maintenance_rejects_bad_window(self):
        with pytest.raises(ValueError):
            MaintenanceEvent(time_s=10.0, duration_s=0.0, domain="rack0")
        with pytest.raises(ValueError):
            MaintenanceEvent(time_s=10.0, duration_s=60.0, domain="")


class TestEventTrace:
    def trace(self) -> EventTrace:
        return EventTrace([
            StragglerEvent(
                iteration=3, duration_iterations=4, rank=1, slowdown=1.8
            ),
            FailureEvent(time_s=120.0, gpus_lost=8),
            ResizeEvent(iteration=50, num_gpus=40),
            FailureEvent(time_s=60.0),
        ])

    def test_rejects_non_events(self):
        with pytest.raises(TypeError):
            EventTrace(["failure at noon"])

    def test_selectors_sorted_by_kind(self):
        trace = self.trace()
        assert [f.time_s for f in trace.failures] == [60.0, 120.0]
        assert [s.iteration for s in trace.stragglers] == [3]
        assert [r.num_gpus for r in trace.resizes] == [40]

    def test_json_round_trip(self, tmp_path):
        trace = self.trace()
        path = tmp_path / "trace.json"
        trace.to_json(path)
        loaded = EventTrace.from_json(path)
        assert loaded.events == trace.events

    def test_from_json_accepts_inline_text(self):
        text = self.trace().to_json()
        assert EventTrace.from_json(text).events == self.trace().events

    def test_from_dicts_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            EventTrace.from_dicts([{"kind": "meteor", "time_s": 1.0}])

    def test_dicts_carry_kind_tag(self):
        kinds = {record["kind"] for record in self.trace().to_dicts()}
        assert kinds == {"failure", "straggler", "resize"}

    def test_empty_trace_is_falsy(self):
        assert not EventTrace()
        assert len(EventTrace()) == 0


class TestSchemaV2:
    def trace(self) -> EventTrace:
        return EventTrace([
            SpotReclaimEvent(time_s=300.0, gpus=8, duration_s=1200.0),
            DomainFailureEvent(time_s=90.0, domain="rack1"),
            FailureEvent(time_s=120.0, gpus_lost=2),
            MaintenanceEvent(time_s=30.0, duration_s=600.0, domain="rack0"),
        ])

    def test_v1_only_trace_has_no_version_marker(self):
        import json

        text = EventTrace([FailureEvent(time_s=60.0)]).to_json()
        assert "version" not in json.loads(text)

    def test_v2_trace_carries_version_marker(self):
        import json

        payload = json.loads(self.trace().to_json())
        assert payload["version"] == 2
        assert self.trace().schema_version == 2

    def test_v2_round_trip(self, tmp_path):
        trace = self.trace()
        path = tmp_path / "trace.json"
        trace.to_json(path)
        assert EventTrace.from_json(path).events == trace.events

    def test_timed_events_sorted_across_kinds(self):
        kinds = [type(e).__name__ for e in self.trace().timed_events]
        assert kinds == [
            "MaintenanceEvent",
            "DomainFailureEvent",
            "FailureEvent",
            "SpotReclaimEvent",
        ]

    def test_selectors(self):
        trace = self.trace()
        assert [d.domain for d in trace.domain_failures] == ["rack1"]
        assert len(trace.outages) == 2

    def test_from_json_rejects_unknown_version(self):
        with pytest.raises(ValueError, match="version"):
            EventTrace.from_json('{"version": 9, "events": []}')


class TestFromJsonSources:
    def test_accepts_bare_array_payload(self):
        trace = EventTrace.from_json(
            '[{"kind": "failure", "time_s": 5.0, "gpus_lost": 1}]'
        )
        assert [f.time_s for f in trace.failures] == [5.0]

    def test_rejects_unreadable_source_with_clear_error(self):
        with pytest.raises(ValueError, match="neither inline JSON"):
            EventTrace.from_json("/no/such/trace.json")

    def test_rejects_non_list_payload(self):
        with pytest.raises(ValueError):
            EventTrace.from_json('{"events": {"kind": "failure"}}')
