"""Property-based invariants of the scenario engine.

Four families, all required by the scenario-engine contract:

1. **Goodput bound** — wall-clock can never beat the ideal (full
   cluster, no events) trajectory: ``goodput <= 1`` and effective
   throughput never exceeds ideal throughput.
2. **Monotone degradation** — for a fixed seed, shrinking the MTBF can
   only add failures and lose goodput.
3. **Replay determinism** — a scenario is a pure function of its spec:
   re-running, and replaying the recorded event trace with sampling
   disabled, both reproduce the metrics exactly.
4. **Zero-event identity** — with no events and a full sample window,
   the engine's per-iteration timings, checkpoint stalls, and MFU are
   hex-identical to :class:`~repro.runtime.trainer.TrainingRun`.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.api import build_simulator
from repro.core.config import DistTrainConfig
from repro.data.synthetic import SyntheticMultimodalDataset
from repro.runtime.checkpoint import CheckpointConfig
from repro.runtime.trainer import TrainingRun
from repro.scenarios import ScenarioSpec, run_scenario
from tests.scenarios.conftest import FAST_RECOVERY

#: Engine runs re-plan orchestration internally; keep example counts
#: modest so the suite stays inside the tier-1 budget.
ENGINE_SETTINGS = dict(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

CONFIG = DistTrainConfig.preset("mllm-9b", 48, 16)


@settings(**ENGINE_SETTINGS)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    mtbf=st.one_of(st.none(), st.floats(min_value=2.0, max_value=500.0)),
    straggler_rate=st.floats(min_value=0.0, max_value=0.1),
    elastic=st.booleans(),
)
def test_goodput_never_exceeds_ideal(seed, mtbf, straggler_rate, elastic):
    spec = ScenarioSpec(
        num_iterations=80,
        checkpoint_interval=20,
        mtbf_gpu_hours=mtbf,
        straggler_rate=straggler_rate,
        elastic=elastic,
        seed=seed,
        **FAST_RECOVERY,
    )
    result = run_scenario(CONFIG, spec)
    assert result.goodput <= 1.0 + 1e-9
    assert result.effective_tokens_per_s <= result.ideal_tokens_per_s * (
        1.0 + 1e-9
    )
    assert result.total_seconds >= result.ideal_seconds * (1.0 - 1e-9)
    assert 0.0 <= result.availability <= 1.0


@settings(**ENGINE_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_failures_only_hurt_goodput(seed):
    """Per-seed guarantees: a failure-free run upper-bounds every run
    with failures (downtime and replay are purely additive), and the
    failure count never shrinks as MTBF drops (arrival times scale
    down, so every prefix gains failures)."""
    ladder = [None, 200.0, 20.0, 5.0]
    results = [
        run_scenario(
            CONFIG,
            ScenarioSpec(
                num_iterations=100,
                checkpoint_interval=25,
                mtbf_gpu_hours=mtbf,
                seed=seed,
                **FAST_RECOVERY,
            ),
        )
        for mtbf in ladder
    ]
    failures = [r.num_failures for r in results]
    assert failures == sorted(failures)
    calm = results[0]
    assert calm.num_failures == 0
    for result in results[1:]:
        if result.num_failures:
            assert result.goodput < calm.goodput
            assert result.total_seconds > calm.total_seconds
        else:
            assert result.goodput == calm.goodput


def test_monotone_degradation_as_mtbf_shrinks():
    """Mean goodput over a seed panel degrades monotonically as MTBF
    drops (per-seed goodput is *not* monotone — a failure landing just
    after a checkpoint is cheaper than one landing just before — so the
    paper-style claim is statistical)."""
    ladder = [None, 15.0, 5.0, 1.5]
    seeds = range(10)
    mean_goodput = []
    mean_failures = []
    for mtbf in ladder:
        results = [
            run_scenario(
                CONFIG,
                ScenarioSpec(
                    num_iterations=100,
                    checkpoint_interval=25,
                    mtbf_gpu_hours=mtbf,
                    seed=seed,
                    **FAST_RECOVERY,
                ),
            )
            for seed in seeds
        ]
        mean_goodput.append(np.mean([r.goodput for r in results]))
        mean_failures.append(np.mean([r.num_failures for r in results]))
    assert mean_failures == sorted(mean_failures)
    assert mean_failures[-1] > mean_failures[0]
    for better, worse in zip(mean_goodput, mean_goodput[1:]):
        assert worse < better


@settings(**ENGINE_SETTINGS)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    elastic=st.booleans(),
)
def test_replay_is_deterministic(seed, elastic):
    spec = ScenarioSpec(
        num_iterations=60,
        checkpoint_interval=15,
        mtbf_gpu_hours=8.0,
        straggler_rate=0.05,
        elastic=elastic,
        seed=seed,
        **FAST_RECOVERY,
    )
    first = run_scenario(CONFIG, spec)
    again = run_scenario(CONFIG, spec)
    assert first.metrics() == again.metrics()
    assert np.array_equal(first.iteration_times, again.iteration_times)
    assert first.events.events == again.events.events

    # An explicit trace *replaces* sampling: replaying the recorded
    # events reproduces the run even with the original MTBF and
    # straggler rate still set...
    replayed = run_scenario(CONFIG, spec.with_(events=first.events))
    assert replayed.metrics() == first.metrics()
    # ...and, equivalently, with sampling explicitly zeroed out.
    stripped = run_scenario(
        CONFIG,
        spec.with_(
            mtbf_gpu_hours=None, straggler_rate=0.0, events=first.events
        ),
    )
    assert stripped.metrics() == first.metrics()


@settings(max_examples=6, deadline=None)
@given(
    num_iterations=st.integers(min_value=1, max_value=5),
    interval=st.integers(min_value=1, max_value=3),
    data_seed=st.integers(min_value=0, max_value=50),
)
def test_zero_event_scenario_matches_training_run(
    num_iterations, interval, data_seed
):
    """No events + full sample window == the TrainingRun path, bit for
    bit: per-iteration times, checkpoint stalls, and mean MFU."""
    config = CONFIG.with_(data_seed=data_seed)
    spec = ScenarioSpec(
        num_iterations=num_iterations,
        sample_iterations=num_iterations,
        checkpoint_interval=interval,
    )
    scenario = run_scenario(config, spec)

    run = TrainingRun(
        simulator=build_simulator(config),
        dataset=SyntheticMultimodalDataset(
            seq_len=config.mllm.seq_len,
            config=config.data_config,
            seed=config.data_seed,
        ),
        global_batch_size=config.global_batch_size,
        num_iterations=num_iterations,
        checkpoint=CheckpointConfig(interval_iterations=interval),
    ).run()

    reference_times = [r.iteration_time for r in run.iterations]
    assert [
        float(t).hex() for t in scenario.iteration_times
    ] == [float(t).hex() for t in reference_times]
    assert (
        float(scenario.checkpoint_stall_seconds).hex()
        == float(run.checkpoint_stall).hex()
    )
    assert float(scenario.mean_mfu).hex() == float(run.mean_mfu).hex()
