"""Scenario-pack properties and golden replay.

Four families, matching the scenario-pack contract:

1. **Arrival determinism + rate-monotonicity** — every arrival process
   is a pure function of ``(process, num_jobs, seed)``, produces sorted
   non-negative times, and (for the stochastic kinds) raising the rate
   never delays any arrival of the same seed.
2. **Blast radius** — a correlated domain failure kills at most the
   GPUs its named domain holds: generated events always name real
   domains of the demand cluster, and simulating a single domain
   failure never shrinks the job below ``demand - domain.num_gpus``.
3. **Golden replay** — every shipped pack's checked-in fixture matches
   a fresh ``materialize`` byte for byte.
4. **Zero-pack identity** — without a pack nothing changes: v1 traces
   round-trip byte-identically with no version marker, and canonical
   forms carry ``pack: None``.
"""

import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster.cluster import make_cluster
from repro.cluster.topology import ClusterTopology
from repro.core.config import DistTrainConfig
from repro.fleet.spec import FleetSpec
from repro.scenarios import (
    PACKS,
    ArrivalProcess,
    DomainFailureEvent,
    EventTrace,
    FaultProfile,
    ScenarioSpec,
    get_pack,
    run_scenario,
)
from tests.scenarios.golden.regen import (
    PACK_GOLDEN_DIR,
    pack_case_inputs,
    pack_fixture,
)

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

ARRIVALS = st.one_of(
    st.builds(
        ArrivalProcess,
        kind=st.just("fixed"),
        spacing_s=st.floats(min_value=0.0, max_value=3600.0),
    ),
    st.builds(
        ArrivalProcess,
        kind=st.just("poisson"),
        rate_per_hour=st.floats(min_value=0.1, max_value=100.0),
    ),
    st.builds(
        ArrivalProcess,
        kind=st.just("diurnal"),
        rate_per_hour=st.floats(min_value=0.1, max_value=100.0),
        peak_to_trough=st.floats(min_value=1.0, max_value=20.0),
        period_s=st.floats(min_value=600.0, max_value=172800.0),
    ),
    st.builds(
        ArrivalProcess,
        kind=st.just("bursty"),
        rate_per_hour=st.floats(min_value=0.1, max_value=100.0),
        burst_size=st.integers(min_value=1, max_value=6),
        burst_spacing_s=st.floats(min_value=0.0, max_value=120.0),
    ),
)


class TestArrivalProcess:
    @settings(**SETTINGS)
    @given(
        process=ARRIVALS,
        num_jobs=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_deterministic_sorted_nonnegative(self, process, num_jobs, seed):
        first = process.sample(num_jobs, seed)
        assert process.sample(num_jobs, seed) == first
        assert len(first) == num_jobs
        assert all(t >= 0.0 for t in first)
        if process.kind != "bursty":
            # Bursty arrivals are indexed by burst, not globally sorted:
            # the next burst may start before the previous one drains.
            assert list(first) == sorted(first)

    @settings(**SETTINGS)
    @given(
        kind=st.sampled_from(["poisson", "diurnal", "bursty"]),
        rate=st.floats(min_value=0.5, max_value=30.0),
        factor=st.floats(min_value=1.0, max_value=10.0),
        num_jobs=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_rate_monotone_per_seed(self, kind, rate, factor, num_jobs, seed):
        """Raising the rate never delays any arrival of the same seed:
        the unit-exponential increments are fixed per seed and only
        scaled (or warped through the cumulative intensity) by the
        rate. Tolerance covers the diurnal bisection's fixed-precision
        inverse."""
        slow = ArrivalProcess(kind=kind, rate_per_hour=rate)
        fast = ArrivalProcess(kind=kind, rate_per_hour=rate * factor)
        for slow_t, fast_t in zip(
            slow.sample(num_jobs, seed), fast.sample(num_jobs, seed)
        ):
            assert fast_t <= slow_t * (1.0 + 1e-9) + 1e-6

    def test_fixed_reproduces_legacy_grid(self):
        process = ArrivalProcess(kind="fixed", spacing_s=120.0)
        assert process.sample(3, seed=9) == (0.0, 120.0, 240.0)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown arrival kind"):
            ArrivalProcess(kind="weekly")


class TestBlastRadius:
    @settings(**SETTINGS)
    @given(
        num_nodes=st.integers(min_value=1, max_value=12),
        rate=st.floats(min_value=0.5, max_value=8.0),
        rack_fraction=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        index=st.integers(min_value=0, max_value=7),
    )
    def test_generated_events_name_real_domains(
        self, num_nodes, rate, rack_fraction, seed, index
    ):
        """Every generated correlated event targets a domain that exists
        in the demand cluster, and no domain out-holds the cluster."""
        cluster = make_cluster(num_nodes * 8)
        profile = FaultProfile(
            domain_failure_rate_per_hour=rate,
            rack_fraction=rack_fraction,
            maintenance_every_s=7200.0,
            maintenance_duration_s=1800.0,
        )
        domains = ClusterTopology(cluster).failure_domains(
            profile.nodes_per_rack
        )
        trace = profile.events_for(cluster, 50, seed, index)
        named = [
            event
            for event in trace.timed_events
            if getattr(event, "domain", None) is not None
        ]
        for event in named:
            domain = domains[event.domain]
            assert 0 < domain.num_gpus <= cluster.num_gpus

    @pytest.mark.parametrize("domain", ["rack0", "node5"])
    def test_domain_failure_bounded_by_domain_size(self, domain):
        """Simulating one domain failure never shrinks the job below
        ``demand - domain.num_gpus`` — the blast radius is the domain,
        not the cluster."""
        config = DistTrainConfig.preset("mllm-9b", 48, 16)
        domains = ClusterTopology(config.cluster).failure_domains()
        spec = ScenarioSpec(
            num_iterations=40,
            checkpoint_interval=10,
            restart_seconds=60.0,
            checkpoint_load_seconds=30.0,
            elastic=True,
            repair_seconds=600.0,
            events=EventTrace(
                [DomainFailureEvent(time_s=30.0, domain=domain)]
            ),
        )
        result = run_scenario(config, spec)
        assert result.num_failures == 1
        assert result.min_gpus >= 48 - domains[domain].num_gpus

    def test_unknown_domain_is_a_no_op(self):
        """A domain absent from the job's current slice has zero blast
        radius: the trace replays against any same-shape slice."""
        config = DistTrainConfig.preset("mllm-9b", 48, 16)
        spec = ScenarioSpec(
            num_iterations=40,
            checkpoint_interval=10,
            restart_seconds=60.0,
            checkpoint_load_seconds=30.0,
            elastic=True,
            events=EventTrace(
                [DomainFailureEvent(time_s=30.0, domain="rack77")]
            ),
        )
        result = run_scenario(config, spec)
        assert result.num_failures == 0
        assert result.min_gpus == 48


class TestPackExpansion:
    def test_materialize_is_deterministic(self):
        config, scenario = pack_case_inputs()
        pack = get_pack("blast-radius")
        first = pack.materialize(
            config, cluster_gpus=96, num_jobs=4, seed=3, scenario=scenario
        )
        again = pack.materialize(
            config, cluster_gpus=96, num_jobs=4, seed=3, scenario=scenario
        )
        assert json.dumps(first) == json.dumps(again)

    def test_build_fleet_clears_sampled_faults(self):
        config, scenario = pack_case_inputs()
        fleet = get_pack("blast-radius").build_fleet(
            config,
            cluster_gpus=96,
            num_jobs=3,
            scenario=scenario.with_(mtbf_gpu_hours=20.0),
        )
        assert fleet.pack == "blast-radius"
        for job in fleet.jobs:
            assert job.scenario.pack == "blast-radius"
            assert job.scenario.mtbf_gpu_hours is None
            assert job.scenario.straggler_rate == 0.0
            assert job.scenario.events is not None

    def test_build_fleet_rejects_scenario_with_events(self):
        config, scenario = pack_case_inputs()
        seeded = scenario.with_(
            events=EventTrace([DomainFailureEvent(time_s=1.0, domain="node0")])
        )
        with pytest.raises(ValueError, match="must not carry one"):
            get_pack("steady").build_fleet(
                config, cluster_gpus=96, num_jobs=2, scenario=seeded
            )

    def test_demand_never_exceeds_cluster(self):
        config, scenario = pack_case_inputs()
        for name in sorted(PACKS):
            fleet = PACKS[name].build_fleet(
                config, cluster_gpus=64, num_jobs=5, scenario=scenario
            )
            assert all(j.demand_gpus <= 64 for j in fleet.jobs)

    def test_get_pack_unknown_name(self):
        with pytest.raises(ValueError, match="unknown scenario pack"):
            get_pack("chaos-monkey")


class TestGoldenReplay:
    @pytest.mark.parametrize("name", sorted(PACKS))
    def test_pack_fixture_replays_byte_identically(self, name):
        path = PACK_GOLDEN_DIR / f"pack_{name}.json"
        expected = json.dumps(pack_fixture(PACKS[name]), indent=1) + "\n"
        assert path.read_text(encoding="utf-8") == expected, (
            f"pack {name!r} golden diverged; re-bless with: "
            "PYTHONPATH=src python -m tests.scenarios.golden.regen"
        )

    @pytest.mark.parametrize("name", sorted(PACKS))
    def test_pack_fixture_events_parse_as_v2_traces(self, name):
        payload = json.loads(
            (PACK_GOLDEN_DIR / f"pack_{name}.json").read_text()
        )
        assert payload["schema"] == 2
        for job in payload["jobs"]:
            trace = EventTrace.from_dicts(job["events"])
            assert not trace.resizes  # packs never script resizes


class TestZeroPackIdentity:
    V1_TEXT = json.dumps(
        {
            "events": [
                {"kind": "failure", "time_s": 60.0, "gpus_lost": 1},
                {
                    "kind": "straggler",
                    "iteration": 3,
                    "duration_iterations": 4,
                    "rank": 1,
                    "slowdown": 1.8,
                },
            ]
        },
        indent=2,
    )

    def test_v1_trace_round_trips_byte_identically(self, tmp_path):
        trace = EventTrace.from_json(self.V1_TEXT)
        assert trace.schema_version == 1
        path = tmp_path / "trace.json"
        trace.to_json(path)
        assert "version" not in json.loads(path.read_text())

    def test_canonical_forms_default_to_no_pack(self, tmp_path):
        assert ScenarioSpec().canonical()["pack"] is None
        config, _ = pack_case_inputs()
        fleet = FleetSpec.homogeneous(config, cluster_gpus=96, num_jobs=2)
        assert fleet.canonical()["pack"] is None
        for job in fleet.canonical()["jobs"]:
            assert job["deadline_s"] is None
            assert job["slo_factor"] is None
