"""Campaign-cache regression tests for scenario trials.

The contract: a trial's cache key covers the *fully resolved* scenario
configuration — any ScenarioSpec change produces a new key (the trial
re-executes), while an unchanged configuration hits the cache even from
a different process.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments import (
    SCENARIO_PARAMS,
    Axis,
    CampaignRunner,
    ResultCache,
    SweepSpec,
    TrialSpec,
)
from repro.scenarios.spec import PARAM_FIELDS

BASE = {"model": "mllm-9b", "gpus": 48, "gbs": 16}
SCENARIO = {**BASE, "scenario_iterations": 40, "mtbf": 30.0}


class TestCacheKeys:
    def test_scenario_params_match_spec_mapping(self):
        # The experiment layer's literal must stay in sync with the
        # scenario package's sweep-parameter mapping.
        assert set(SCENARIO_PARAMS) == set(PARAM_FIELDS)

    def test_plain_trial_key_unchanged_by_scenario_support(self):
        # Plain trials keep the pure task-config hash, so pre-existing
        # cache entries stay valid.
        trial = TrialSpec(BASE)
        assert trial.cache_key == trial.config_hash

    def test_scenario_trial_key_differs_from_plain(self):
        assert TrialSpec(SCENARIO).cache_key != TrialSpec(BASE).cache_key

    @pytest.mark.parametrize("change", [
        {"scenario_iterations": 41},
        {"mtbf": 31.0},
        {"straggler_rate": 0.05},
        {"straggler_slowdown": 2.0},
        {"straggler_iterations": 7},
        {"elastic": True},
        {"checkpoint_interval": 10},
        {"failure_seed": 1},
        {"events": [{"kind": "failure", "time_s": 5.0, "gpus_lost": 8}]},
    ])
    def test_any_scenario_change_makes_new_key(self, change):
        base_key = TrialSpec(SCENARIO).cache_key
        changed = TrialSpec({**SCENARIO, **change})
        assert changed.cache_key != base_key
        # ... while the task config itself is untouched.
        assert changed.config_hash == TrialSpec(SCENARIO).config_hash

    def test_unchanged_scenario_key_is_stable(self):
        assert (
            TrialSpec(dict(SCENARIO)).cache_key
            == TrialSpec(dict(SCENARIO)).cache_key
        )

    def test_task_change_also_makes_new_key(self):
        assert (
            TrialSpec({**SCENARIO, "gbs": 32}).cache_key
            != TrialSpec(SCENARIO).cache_key
        )


_RERUN_SNIPPET = """
import sys
from repro.experiments import Axis, CampaignRunner, ResultCache, SweepSpec

spec = SweepSpec(
    base={{"model": "mllm-9b", "gpus": 48, "gbs": 16,
           "scenario_iterations": 40}},
    axes=[Axis("mtbf", [20.0, 60.0])],
    name="cross-process",
)
campaign = CampaignRunner(
    spec, cache=ResultCache({cache_dir!r}), processes=1
).run()
assert campaign.failed == 0, campaign.records
print(f"executed={{campaign.executed}} cached={{campaign.cached}}")
"""


class TestCrossProcessCache:
    def test_unchanged_scenario_config_hits_cache_across_processes(
        self, tmp_path
    ):
        """A second campaign in a *fresh interpreter* must complete
        entirely from the on-disk cache."""
        cache_dir = str(tmp_path / "cache")
        spec = SweepSpec(
            base={**BASE, "scenario_iterations": 40},
            axes=[Axis("mtbf", [20.0, 60.0])],
            name="cross-process",
        )
        first = CampaignRunner(
            spec, cache=ResultCache(cache_dir), processes=1
        ).run()
        assert first.failed == 0
        assert first.executed == 2 and first.cached == 0

        src = Path(__file__).resolve().parents[2] / "src"
        proc = subprocess.run(
            [sys.executable, "-c", _RERUN_SNIPPET.format(cache_dir=cache_dir)],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "executed=0 cached=2" in proc.stdout

    def test_scenario_sweep_produces_scenario_metrics(self, tmp_path):
        spec = SweepSpec(
            base={**BASE, "scenario_iterations": 30},
            axes=[Axis("mtbf", [25.0]), Axis("elastic", [False, True])],
            name="metrics",
        )
        campaign = CampaignRunner(
            spec, cache=ResultCache(str(tmp_path / "c")), processes=1
        ).run()
        assert campaign.failed == 0
        frame = campaign.frame().ok()
        assert len(frame) == 2
        for row in frame:
            assert 0 < row["goodput"] <= 1.0
            assert "recovery_seconds" in row
            assert row["mtbf"] == 25.0
        # Scenario params round-trip through the frame's record layout.
        records = frame.to_records()
        assert all(
            "mtbf" in record["params"] and "elastic" in record["params"]
            for record in records
        )
