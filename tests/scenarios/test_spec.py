"""ScenarioSpec validation, sweep-parameter mapping, canonical form."""

import pytest

from repro.runtime.failure import FailureModel
from repro.scenarios.events import EventTrace, StragglerEvent
from repro.scenarios.spec import PARAM_FIELDS, ScenarioSpec


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"num_iterations": 0},
        {"checkpoint_interval": 0},
        {"mtbf_gpu_hours": 0.0},
        {"straggler_rate": 1.5},
        {"straggler_rate": -0.1},
        {"straggler_slowdown": 0.5},
        {"straggler_iterations": 0},
        {"sample_iterations": 0},
        {"gpus_lost_per_failure": 0},
        {"repair_seconds": -1.0},
        {"replan_seconds": -1.0},
        {"restart_seconds": -1.0},
        {"checkpoint_load_seconds": -1.0},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ScenarioSpec(**kwargs)

    def test_defaults_are_valid(self):
        spec = ScenarioSpec()
        assert spec.num_iterations == 1000
        assert spec.failure_model() is None

    def test_failure_model_carries_downtime(self):
        spec = ScenarioSpec(
            mtbf_gpu_hours=100.0,
            restart_seconds=10.0,
            checkpoint_load_seconds=5.0,
        )
        model = spec.failure_model()
        assert isinstance(model, FailureModel)
        assert model.mtbf_gpu_hours == 100.0
        assert model.downtime_seconds == 15.0


class TestSweepParams:
    def test_from_params_maps_short_names(self):
        spec = ScenarioSpec.from_params({
            "scenario_iterations": 300,
            "mtbf": 42.0,
            "elastic": True,
            "checkpoint_interval": 25,
            "failure_seed": 9,
        })
        assert spec.num_iterations == 300
        assert spec.mtbf_gpu_hours == 42.0
        assert spec.elastic is True
        assert spec.checkpoint_interval == 25
        assert spec.seed == 9

    def test_from_params_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown scenario parameter"):
            ScenarioSpec.from_params({"mtbf_hours": 10.0})

    def test_from_params_parses_inline_events(self):
        spec = ScenarioSpec.from_params({
            "events": [
                {"kind": "straggler", "iteration": 4,
                 "duration_iterations": 2, "rank": 0, "slowdown": 2.0},
            ],
        })
        assert isinstance(spec.events, EventTrace)
        assert spec.events.stragglers[0].slowdown == 2.0

    def test_param_fields_cover_every_sweepable_knob(self):
        # Every mapped field must exist on the spec.
        spec = ScenarioSpec()
        for field_name in PARAM_FIELDS.values():
            assert hasattr(spec, field_name)


class TestCanonical:
    def test_canonical_is_json_safe_and_complete(self):
        import json

        spec = ScenarioSpec(
            mtbf_gpu_hours=10.0,
            events=EventTrace([
                StragglerEvent(
                    iteration=1, duration_iterations=2, rank=0, slowdown=1.5
                )
            ]),
        )
        payload = spec.canonical()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["events"][0]["kind"] == "straggler"

    def test_canonical_distinguishes_every_field(self):
        base = ScenarioSpec().canonical()
        for change, value in [
            ("num_iterations", 7), ("checkpoint_interval", 7),
            ("mtbf_gpu_hours", 7.0), ("restart_seconds", 7.0),
            ("checkpoint_load_seconds", 7.0), ("gpus_lost_per_failure", 7),
            ("straggler_rate", 0.7), ("straggler_slowdown", 7.0),
            ("straggler_iterations", 7), ("elastic", True),
            ("repair_seconds", 7.0), ("replan_seconds", 7.0),
            ("sample_iterations", 7), ("seed", 7),
            ("pack", "blast-radius"),
        ]:
            changed = ScenarioSpec(**{change: value}).canonical()
            assert changed != base, f"{change} not in canonical form"
