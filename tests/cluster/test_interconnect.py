"""Tests for link models."""

import pytest

from repro.cluster.interconnect import (
    NVLINK_300,
    PCIE_GEN4,
    ROCE_4X200,
    LinkSpec,
    intra_node_link,
)


class TestLinkSpec:
    def test_effective_bandwidth(self):
        link = LinkSpec(name="x", bandwidth=100e9, efficiency=0.8)
        assert link.effective_bandwidth == pytest.approx(80e9)

    def test_transfer_time_includes_latency(self):
        link = LinkSpec(name="x", bandwidth=1e9, latency=1e-3, efficiency=1.0)
        assert link.transfer_time(0) == pytest.approx(1e-3)
        assert link.transfer_time(1e9) == pytest.approx(1.0 + 1e-3)

    def test_negative_volume_rejected(self):
        with pytest.raises(ValueError):
            NVLINK_300.transfer_time(-1)

    def test_nvlink_much_faster_than_roce(self):
        assert (
            NVLINK_300.effective_bandwidth
            > 10 * ROCE_4X200.effective_bandwidth
        )

    def test_roce_per_gpu_share(self):
        # 4 x 200 Gbps shared by 8 GPUs -> 100 Gbps = 12.5 GB/s raw.
        assert ROCE_4X200.bandwidth == pytest.approx(12.5e9)


class TestIntraNodeLink:
    def test_falls_back_to_pcie_without_nvlink(self):
        assert intra_node_link(0.0) is PCIE_GEN4

    def test_builds_nvlink_spec(self):
        link = intra_node_link(300e9)
        assert link.bandwidth == pytest.approx(150e9)
        assert "nvlink" in link.name
