"""Tests for GPU specifications."""

import pytest

from repro.cluster.gpu import (
    AMPERE_A100_40G,
    AMPERE_A100_80G,
    GPU_PRESETS,
    L20,
    GPUSpec,
    TFLOPS,
)


class TestGPUSpec:
    def test_a100_peak_bf16(self):
        assert AMPERE_A100_80G.peak("bf16") == pytest.approx(312 * TFLOPS)

    def test_a100_peak_fp32_lower_than_bf16(self):
        assert AMPERE_A100_80G.peak("fp32") < AMPERE_A100_80G.peak("bf16")

    def test_unknown_precision_raises(self):
        with pytest.raises(KeyError):
            AMPERE_A100_80G.peak("fp8")

    def test_memory_capacity_80g(self):
        assert AMPERE_A100_80G.memory_bytes == 80 * 1024**3

    def test_40g_variant_differs_only_in_memory_fields(self):
        assert AMPERE_A100_40G.memory_bytes < AMPERE_A100_80G.memory_bytes
        assert AMPERE_A100_40G.peak("bf16") == AMPERE_A100_80G.peak("bf16")

    def test_l20_has_no_nvlink(self):
        assert L20.nvlink_bandwidth == 0.0

    def test_l20_is_slower_than_a100(self):
        assert L20.peak("bf16") < AMPERE_A100_80G.peak("bf16")

    def test_with_overrides_creates_new_spec(self):
        custom = AMPERE_A100_80G.with_overrides(num_sms=64)
        assert custom.num_sms == 64
        assert AMPERE_A100_80G.num_sms == 108
        assert custom.peak("bf16") == AMPERE_A100_80G.peak("bf16")

    def test_presets_registry(self):
        assert set(GPU_PRESETS) == {"a100-80g", "a100-40g", "l20"}
        for spec in GPU_PRESETS.values():
            assert isinstance(spec, GPUSpec)
            assert spec.peak("bf16") > 0
