"""Tests for cluster composition and lookup."""

import pytest

from repro.cluster.cluster import ClusterSpec, NodePool, make_cluster
from repro.cluster.node import AMPERE_NODE, L20_NODE, NodeSpec


class TestNodePool:
    def test_num_gpus(self):
        pool = NodePool(node=AMPERE_NODE, num_nodes=3)
        assert pool.num_gpus == 24

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            NodePool(node=AMPERE_NODE, num_nodes=0)

    def test_default_name(self):
        pool = NodePool(node=AMPERE_NODE, num_nodes=1)
        assert pool.name == AMPERE_NODE.name


class TestMakeCluster:
    def test_basic(self):
        cluster = make_cluster(96)
        assert cluster.num_gpus == 96
        assert cluster.num_nodes == 12
        assert cluster.gpus_per_node == 8

    def test_rejects_non_multiple(self):
        with pytest.raises(ValueError):
            make_cluster(97)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            make_cluster(0)

    def test_paper_scale(self):
        cluster = make_cluster(1296)
        assert cluster.num_nodes == 162
        assert cluster.total_peak_flops == pytest.approx(
            1296 * 312e12, rel=1e-6
        )


class TestGPULookup:
    def test_node_of_gpu(self):
        cluster = make_cluster(24)
        _, node0 = cluster.node_of_gpu(0)
        _, node1 = cluster.node_of_gpu(7)
        _, node2 = cluster.node_of_gpu(8)
        assert node0 == node1 == 0
        assert node2 == 1

    def test_out_of_range(self):
        cluster = make_cluster(16)
        with pytest.raises(IndexError):
            cluster.node_of_gpu(16)
        with pytest.raises(IndexError):
            cluster.node_of_gpu(-1)

    def test_same_node(self):
        cluster = make_cluster(16)
        assert cluster.same_node(0, 7)
        assert not cluster.same_node(7, 8)

    def test_iter_gpu_specs_counts(self):
        cluster = make_cluster(16)
        assert sum(1 for _ in cluster.iter_gpu_specs()) == 16


class TestHeterogeneousCluster:
    def test_two_pools(self):
        cluster = ClusterSpec(
            pools=(
                NodePool(node=AMPERE_NODE, num_nodes=2),
                NodePool(node=L20_NODE, num_nodes=1),
            )
        )
        assert cluster.num_gpus == 24
        assert not cluster.is_homogeneous
        spec, node_index = cluster.node_of_gpu(16)
        assert spec is L20_NODE
        assert node_index == 2

    def test_requires_a_pool(self):
        with pytest.raises(ValueError):
            ClusterSpec(pools=())

    def test_cpu_cores_total(self):
        cluster = make_cluster(8, cpu_nodes=4)
        assert cluster.total_cpu_cores == 4 * cluster.cpu_cores_per_node
