"""Tests for topology and rank placement."""

import pytest

from repro.cluster.cluster import make_cluster
from repro.cluster.topology import ClusterTopology, RankPlacement


class TestAllocation:
    def test_contiguous_allocation(self):
        topo = ClusterTopology(make_cluster(32))
        a = topo.allocate("encoder", 8)
        b = topo.allocate("llm", 16)
        assert list(a.gpu_indices) == list(range(0, 8))
        assert list(b.gpu_indices) == list(range(8, 24))
        assert topo.free_gpus == 8

    def test_over_allocation_raises(self):
        topo = ClusterTopology(make_cluster(8))
        topo.allocate("llm", 8)
        with pytest.raises(RuntimeError):
            topo.allocate("generator", 1)

    def test_reset(self):
        topo = ClusterTopology(make_cluster(8))
        topo.allocate("llm", 8)
        topo.reset()
        assert topo.free_gpus == 8
        assert topo.placements == ()

    def test_placement_validation(self):
        with pytest.raises(ValueError):
            RankPlacement("x", -1, 4)
        with pytest.raises(ValueError):
            RankPlacement("x", 0, 0)


class TestLinkSelection:
    def test_intra_node_uses_nvlink(self):
        topo = ClusterTopology(make_cluster(16))
        link = topo.link_between(0, 7)
        assert "nvlink" in link.name

    def test_cross_node_uses_roce(self):
        topo = ClusterTopology(make_cluster(16))
        link = topo.link_between(0, 8)
        assert "roce" in link.name

    def test_group_link_bottleneck(self):
        topo = ClusterTopology(make_cluster(16))
        assert "nvlink" in topo.group_link(list(range(8))).name
        assert "roce" in topo.group_link([0, 8]).name

    def test_empty_group_rejected(self):
        topo = ClusterTopology(make_cluster(8))
        with pytest.raises(ValueError):
            topo.group_link([])


class TestGraph:
    def test_graph_is_full_mesh(self):
        topo = ClusterTopology(make_cluster(32))
        graph = topo.to_graph()
        n = graph.number_of_nodes()
        assert n == 4
        assert graph.number_of_edges() == n * (n - 1) // 2

    def test_bisection_bandwidth_positive(self):
        topo = ClusterTopology(make_cluster(32))
        assert topo.bisection_bandwidth() > 0

    def test_bisection_scales_with_cluster(self):
        small = ClusterTopology(make_cluster(16)).bisection_bandwidth()
        large = ClusterTopology(make_cluster(64)).bisection_bandwidth()
        assert large > small
