"""Tests for topology, rank placement, and failure domains."""

from dataclasses import replace

import pytest

from repro.cluster.cluster import ClusterSpec, NodePool, make_cluster
from repro.cluster.interconnect import LinkSpec
from repro.cluster.node import AMPERE_NODE
from repro.cluster.topology import ClusterTopology, FailureDomain, RankPlacement

SLOW_FABRIC = LinkSpec(name="roce-slow", bandwidth=5e9, efficiency=0.8)

#: Two pools whose nodes sit on fabrics of different speed.
HETERO_CLUSTER = ClusterSpec(
    pools=(
        NodePool(node=AMPERE_NODE, num_nodes=2, name="fast"),
        NodePool(
            node=replace(
                AMPERE_NODE, name="ampere-slow", inter_link=SLOW_FABRIC
            ),
            num_nodes=2,
            name="slow",
        ),
    ),
)


class TestAllocation:
    def test_contiguous_allocation(self):
        topo = ClusterTopology(make_cluster(32))
        a = topo.allocate("encoder", 8)
        b = topo.allocate("llm", 16)
        assert list(a.gpu_indices) == list(range(0, 8))
        assert list(b.gpu_indices) == list(range(8, 24))
        assert topo.free_gpus == 8

    def test_over_allocation_raises(self):
        topo = ClusterTopology(make_cluster(8))
        topo.allocate("llm", 8)
        with pytest.raises(RuntimeError):
            topo.allocate("generator", 1)

    def test_reset(self):
        topo = ClusterTopology(make_cluster(8))
        topo.allocate("llm", 8)
        topo.reset()
        assert topo.free_gpus == 8
        assert topo.placements == ()

    def test_placement_validation(self):
        with pytest.raises(ValueError):
            RankPlacement("x", -1, 4)
        with pytest.raises(ValueError):
            RankPlacement("x", 0, 0)


class TestLinkSelection:
    def test_intra_node_uses_nvlink(self):
        topo = ClusterTopology(make_cluster(16))
        link = topo.link_between(0, 7)
        assert "nvlink" in link.name

    def test_cross_node_uses_roce(self):
        topo = ClusterTopology(make_cluster(16))
        link = topo.link_between(0, 8)
        assert "roce" in link.name

    def test_group_link_bottleneck(self):
        topo = ClusterTopology(make_cluster(16))
        assert "nvlink" in topo.group_link(list(range(8))).name
        assert "roce" in topo.group_link([0, 8]).name

    def test_empty_group_rejected(self):
        topo = ClusterTopology(make_cluster(8))
        with pytest.raises(ValueError):
            topo.group_link([])

    def test_cross_pool_group_bottlenecked_by_slowest_member(self):
        """A group spanning pools with different NICs runs at the
        slower pool's bandwidth regardless of which member is listed
        first (GPUs 0-15 are the fast pool, 16-31 the slow one)."""
        topo = ClusterTopology(HETERO_CLUSTER)
        for group in ([0, 16], [16, 0], [0, 8, 16, 24]):
            assert topo.group_link(group).name == "roce-slow"

    def test_cross_node_group_within_fast_pool_stays_fast(self):
        topo = ClusterTopology(HETERO_CLUSTER)
        assert "roce-slow" not in topo.group_link([0, 8]).name


class TestFailureDomains:
    def test_single_pool_nodes_and_racks(self):
        domains = ClusterTopology(make_cluster(48)).failure_domains()
        names = set(domains)
        assert {f"node{i}" for i in range(6)} <= names
        assert {"rack0", "rack1"} <= names
        assert domains["rack0"].node_indices == (0, 1, 2, 3)
        assert domains["rack0"].num_gpus == 32
        assert domains["rack1"].node_indices == (4, 5)
        assert domains["rack1"].num_gpus == 16
        assert all(d.num_gpus == 8 for n, d in domains.items()
                   if d.scope == "node")

    def test_racks_never_span_pools(self):
        domains = ClusterTopology(HETERO_CLUSTER).failure_domains(
            nodes_per_rack=4
        )
        racks = [d for d in domains.values() if d.scope == "rack"]
        assert [d.node_indices for d in racks] == [(0, 1), (2, 3)]

    def test_gpu_totals_cover_the_cluster_exactly_twice(self):
        # Every GPU belongs to exactly one node domain and one rack.
        cluster = make_cluster(96)
        domains = ClusterTopology(cluster).failure_domains()
        by_scope = {"node": 0, "rack": 0}
        for domain in domains.values():
            by_scope[domain.scope] += domain.num_gpus
        assert by_scope == {"node": 96, "rack": 96}

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ValueError):
            ClusterTopology(make_cluster(8)).failure_domains(0)
        with pytest.raises(ValueError):
            FailureDomain("", "node", (0,), 8)
        with pytest.raises(ValueError):
            FailureDomain("x", "pod", (0,), 8)
        with pytest.raises(ValueError):
            FailureDomain("x", "node", (), 8)


class TestGraph:
    def test_graph_is_full_mesh(self):
        topo = ClusterTopology(make_cluster(32))
        graph = topo.to_graph()
        n = graph.number_of_nodes()
        assert n == 4
        assert graph.number_of_edges() == n * (n - 1) // 2

    def test_bisection_bandwidth_positive(self):
        topo = ClusterTopology(make_cluster(32))
        assert topo.bisection_bandwidth() > 0

    def test_bisection_scales_with_cluster(self):
        small = ClusterTopology(make_cluster(16)).bisection_bandwidth()
        large = ClusterTopology(make_cluster(64)).bisection_bandwidth()
        assert large > small
