"""Allocation accounting: carve/release/fail/repair stay leak-free."""

import numpy as np
import pytest

from repro.cluster.allocation import AllocationError, GPUAllocator
from repro.cluster.cluster import make_cluster


@pytest.fixture
def allocator() -> GPUAllocator:
    return GPUAllocator(make_cluster(96))


class TestCarveRelease:
    def test_carve_moves_free_to_held(self, allocator):
        allocator.carve("a", 48)
        assert allocator.free_gpus == 48
        assert allocator.held_by("a") == 48
        assert allocator.held_gpus == 48

    def test_release_returns_capacity(self, allocator):
        allocator.carve("a", 48)
        allocator.release("a", 16)
        assert allocator.held_by("a") == 32
        assert allocator.free_gpus == 64

    def test_carve_is_node_granular(self, allocator):
        with pytest.raises(AllocationError, match="whole nodes"):
            allocator.carve("a", 12)

    def test_over_carve_rejected(self, allocator):
        with pytest.raises(AllocationError, match="requested"):
            allocator.carve("a", 104)

    def test_over_release_rejected(self, allocator):
        allocator.carve("a", 16)
        with pytest.raises(AllocationError, match="only 16 held"):
            allocator.release("a", 24)

    def test_release_all_clears_owner(self, allocator):
        allocator.carve("a", 48)
        allocator.mark_down("a", 8)
        freed = allocator.release_all("a")
        assert freed == 48
        assert allocator.free_gpus == 96
        assert allocator.owners() == []


class TestFailRepair:
    def test_mark_down_reserves_for_owner(self, allocator):
        allocator.carve("a", 48)
        allocator.mark_down("a", 8)
        assert allocator.held_by("a") == 40
        assert allocator.down_for("a") == 8
        assert allocator.free_gpus == 48  # nobody else gets the wreck

    def test_mark_repaired_returns_to_owner(self, allocator):
        allocator.carve("a", 48)
        allocator.mark_down("a", 16)
        allocator.mark_repaired("a", 16)
        assert allocator.held_by("a") == 48
        assert allocator.down_for("a") == 0

    def test_cannot_repair_more_than_down(self, allocator):
        allocator.carve("a", 48)
        allocator.mark_down("a", 8)
        with pytest.raises(AllocationError, match="only 8 down"):
            allocator.mark_repaired("a", 16)

    def test_cannot_fail_more_than_held(self, allocator):
        allocator.carve("a", 16)
        with pytest.raises(AllocationError, match="only 16 held"):
            allocator.mark_down("a", 24)

    def test_abandon_repairs_frees_pool(self, allocator):
        allocator.carve("a", 48)
        allocator.mark_down("a", 16)
        assert allocator.abandon_repairs("a") == 16
        assert allocator.free_gpus == 64
        assert allocator.down_for("a") == 0


class TestInvariants:
    def test_conservation_over_random_walk(self, allocator):
        # A long random sequence of legal transitions never leaks a GPU.
        rng = np.random.default_rng(7)
        owners = ["a", "b", "c"]
        for _ in range(500):
            op = rng.integers(0, 5)
            owner = owners[rng.integers(0, len(owners))]
            nodes = int(rng.integers(1, 4)) * 8
            try:
                if op == 0:
                    allocator.carve(owner, nodes)
                elif op == 1:
                    allocator.release(owner, nodes)
                elif op == 2:
                    allocator.mark_down(owner, nodes)
                elif op == 3:
                    allocator.mark_repaired(owner, nodes)
                else:
                    allocator.release_all(owner)
            except AllocationError:
                continue  # illegal transition correctly refused
            booked = (
                allocator.free_gpus
                + allocator.held_gpus
                + allocator.down_gpus
            )
            assert booked == allocator.total_gpus

    def test_snapshot_accounts_everything(self, allocator):
        allocator.carve("a", 48)
        allocator.carve("b", 24)
        allocator.mark_down("a", 8)
        snap = allocator.snapshot()
        assert snap["a"] == (40, 8)
        assert snap["b"] == (24, 0)
        assert snap["<free>"] == (24, 0)
        assert allocator.utilization == pytest.approx(64 / 96)
