"""Infeasible shrinks surface as a clear, typed, recoverable error."""

import pytest

from repro.core.api import _problem, replan
from repro.core.config import DistTrainConfig
from repro.orchestration import InfeasibleClusterError
from repro.orchestration.adaptive import replan_for_cluster
from repro.orchestration.plancache import PLAN_CACHE


class TestInfeasibleClusterError:
    def test_is_a_runtime_error(self):
        # Legacy callers catching the old generic failures keep working.
        assert issubclass(InfeasibleClusterError, RuntimeError)

    def test_adaptive_below_minimum(self):
        config = DistTrainConfig.preset("mllm-72b", 1296, 1920)
        with pytest.raises(InfeasibleClusterError, match="no feasible"):
            replan(config, 64)

    def test_non_node_size_is_infeasible_not_obscure(self):
        config = DistTrainConfig.preset("mllm-9b", 48, 16)
        with pytest.raises(InfeasibleClusterError, match="cannot re-plan"):
            replan_for_cluster(_problem(config), 4)

    def test_baselines_raise_the_same_type(self):
        config = DistTrainConfig.preset(
            "mllm-9b", 48, 16, system="megatron-lm"
        )
        with pytest.raises(InfeasibleClusterError, match="too small"):
            replan(config, 8)

    def test_carries_the_offending_size(self):
        config = DistTrainConfig.preset("mllm-72b", 1296, 1920)
        with pytest.raises(InfeasibleClusterError) as info:
            replan(config, 32)
        assert info.value.num_gpus == 32

    def test_failed_plans_stay_uncached(self):
        config = DistTrainConfig.preset("mllm-72b", 1296, 1920)
        PLAN_CACHE.clear()
        for _ in range(2):
            with pytest.raises(InfeasibleClusterError):
                replan(config, 64)
        # Both attempts computed; neither landed in the cache.
        assert len(PLAN_CACHE) == 0
