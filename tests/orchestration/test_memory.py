"""GPU memory feasibility tests."""

import numpy as np

import pytest

from repro.cluster.gpu import AMPERE_A100_80G
from repro.models.base import ModuleWorkload
from repro.models.llm import LLAMA3_7B, LLAMA3_70B
from repro.models.vit import VIT_HUGE
from repro.orchestration.memory import MemoryModel

MEMORY = MemoryModel(gpu_memory_bytes=AMPERE_A100_80G.memory_bytes)
W = ModuleWorkload(samples=1)


class TestStaticBytes:
    def test_params_and_grads_scale_with_model_parallel(self):
        wide = MEMORY.static_bytes_per_gpu(LLAMA3_70B, tp=8, pp=10, dp=1,
                                           trainable=True)
        narrow = MEMORY.static_bytes_per_gpu(LLAMA3_70B, tp=1, pp=1, dp=1,
                                             trainable=True)
        assert narrow > 50 * wide

    def test_zero1_shards_optimizer_across_dp(self):
        dp1 = MEMORY.static_bytes_per_gpu(LLAMA3_7B, tp=8, pp=1, dp=1,
                                          trainable=True)
        dp8 = MEMORY.static_bytes_per_gpu(LLAMA3_7B, tp=8, pp=1, dp=8,
                                          trainable=True)
        optimizer_full = LLAMA3_7B.param_count() * 12.0 / 8
        assert dp1 - dp8 == pytest.approx(optimizer_full * 7 / 8)

    def test_frozen_needs_only_params(self):
        frozen = MEMORY.static_bytes_per_gpu(LLAMA3_7B, tp=1, pp=1, dp=1,
                                             trainable=False)
        assert frozen == pytest.approx(LLAMA3_7B.param_count() * 2.0)


class TestActivations:
    def test_in_flight_scaling(self):
        one = MEMORY.activation_bytes_per_gpu(LLAMA3_7B, W, tp=8,
                                              in_flight_microbatches=1)
        four = MEMORY.activation_bytes_per_gpu(LLAMA3_7B, W, tp=8,
                                               in_flight_microbatches=4)
        assert four == pytest.approx(4 * one)

    def test_invalid_in_flight(self):
        with pytest.raises(ValueError):
            MEMORY.activation_bytes_per_gpu(LLAMA3_7B, W, 1, 0)


class TestFeasibility:
    def test_7b_fits_tp8(self):
        assert MEMORY.fits(LLAMA3_7B, W, tp=8, pp=1, dp=4, trainable=True,
                           in_flight_microbatches=3)

    def test_70b_needs_pipeline_at_tp8(self):
        fits_pp1 = MEMORY.fits(LLAMA3_70B, W, tp=8, pp=1, dp=4,
                               trainable=True, in_flight_microbatches=3)
        fits_pp10 = MEMORY.fits(LLAMA3_70B, W, tp=8, pp=10, dp=4,
                                trainable=True, in_flight_microbatches=12)
        assert fits_pp10
        assert not fits_pp1

    def test_70b_never_fits_tp1_pp1(self):
        assert not MEMORY.fits(LLAMA3_70B, W, tp=1, pp=1, dp=1,
                               trainable=True, in_flight_microbatches=1)

    def test_encoder_fits_single_gpu(self):
        w = ModuleWorkload(samples=1, image_tokens=8000, images=8)
        assert MEMORY.fits(VIT_HUGE, w, tp=1, pp=1, dp=1, trainable=True,
                           in_flight_microbatches=8)


class TestMinPP:
    def test_min_pp_monotone_in_model_size(self):
        small = MEMORY.min_pp_for_llm(LLAMA3_7B, W, tp=8, dp=4,
                                      trainable=True, max_pp=32)
        large = MEMORY.min_pp_for_llm(LLAMA3_70B, W, tp=8, dp=4,
                                      trainable=True, max_pp=80)
        assert small <= large

    def test_frozen_reduces_min_pp(self):
        trainable = MEMORY.min_pp_for_llm(LLAMA3_70B, W, tp=4, dp=2,
                                          trainable=True, max_pp=80)
        frozen = MEMORY.min_pp_for_llm(LLAMA3_70B, W, tp=4, dp=2,
                                       trainable=False, max_pp=80)
        assert frozen <= trainable

    def test_unfittable_raises(self):
        tiny = MemoryModel(gpu_memory_bytes=1024**3)  # 1 GB GPU
        with pytest.raises(ValueError):
            tiny.min_pp_for_llm(LLAMA3_70B, W, tp=1, dp=1, trainable=True,
                                max_pp=4)


class TestBatchEquivalence:
    """The vectorized screens are bit-identical to the scalar loops."""

    @pytest.mark.parametrize("module", [LLAMA3_7B, LLAMA3_70B])
    @pytest.mark.parametrize("trainable", [True, False])
    def test_fits_batch_matches_scalar(self, module, trainable):
        params = module.param_count()
        act = module.activation_bytes(W)
        tps, pps, dps, flights = [], [], [], []
        expected = []
        for tp in (1, 2, 4, 8):
            for pp in (1, 2, 5, 10, 40):
                for dp in (1, 3, 16):
                    in_flight = min(pp + 2, 12)
                    tps.append(tp)
                    pps.append(pp)
                    dps.append(dp)
                    flights.append(in_flight)
                    expected.append(MEMORY.fits(
                        module, W, tp=tp, pp=pp, dp=dp,
                        trainable=trainable,
                        in_flight_microbatches=in_flight,
                    ))
        got = MEMORY.fits_batch(
            params, act, np.array(tps), np.array(pps), np.array(dps),
            trainable, np.array(flights),
        )
        assert got.tolist() == expected

    @pytest.mark.parametrize("trainable", [True, False])
    def test_min_pp_batch_matches_scalar(self, trainable):
        module = LLAMA3_70B
        params = module.param_count()
        act = module.activation_bytes(W)
        tps, dps, expected = [], [], []
        for tp in (1, 2, 4, 8, 16):
            for dp in (1, 2, 4, 8, 30, 240):
                tps.append(tp)
                dps.append(dp)
                try:
                    expected.append(MEMORY.min_pp_for_llm(
                        module, W, tp=tp, dp=dp, trainable=trainable,
                        max_pp=module.num_layers,
                    ))
                except ValueError:
                    expected.append(0)
        got = MEMORY.min_pp_for_llm_batch(
            params, act, np.array(tps), np.array(dps), trainable,
            max_pp=module.num_layers,
        )
        assert got.tolist() == expected

    def test_min_pp_batch_unfittable_returns_zero(self):
        tiny = MemoryModel(gpu_memory_bytes=1024**3)
        got = tiny.min_pp_for_llm_batch(
            LLAMA3_70B.param_count(),
            LLAMA3_70B.activation_bytes(W),
            np.array([1]), np.array([1]), True, max_pp=4,
        )
        assert got.tolist() == [0]
