"""Objective-function (Eqs. 1-2) tests."""

import pytest

from repro.orchestration.formulation import (
    CandidateConfig,
    module_sample_time,
    objective,
)


class TestCandidateConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CandidateConfig(tp_lm=0, dp_lm=1)


class TestModuleSampleTime:
    def test_all_modules_positive(self, problem_9b):
        for name in ("encoder", "llm", "generator"):
            assert module_sample_time(problem_9b, name, 1) > 0

    def test_tp_reduces_time(self, problem_9b):
        assert module_sample_time(problem_9b, "llm", 8) < module_sample_time(
            problem_9b, "llm", 1
        )


class TestObjective:
    def test_breakdown_consistency(self, problem_9b):
        candidate = CandidateConfig(tp_lm=8, dp_lm=4)
        breakdown = objective(problem_9b, candidate, x=4.0, y=32.0, z=4.0)
        assert breakdown.total == pytest.approx(
            breakdown.warmup + breakdown.steady
        )
        assert breakdown.num_microbatches == 16

    def test_steady_scales_with_microbatches(self, problem_9b):
        a = objective(
            problem_9b, CandidateConfig(tp_lm=8, dp_lm=4), 4.0, 32.0, 4.0
        )
        b = objective(
            problem_9b, CandidateConfig(tp_lm=8, dp_lm=2), 4.0, 32.0, 4.0
        )
        # dp=2 doubles the microbatch count; steady roughly doubles
        # (stage times halve with dp but (n-1) doubles, so compare via
        # microbatch counts instead).
        assert b.num_microbatches == 2 * a.num_microbatches

    def test_more_llm_gpus_reduce_llm_stage_time(self, problem_9b):
        candidate = CandidateConfig(tp_lm=8, dp_lm=4)
        small = objective(problem_9b, candidate, 4.0, 32.0, 4.0)
        large = objective(problem_9b, candidate, 4.0, 40.0, 4.0)
        assert large.stage_time_llm < small.stage_time_llm

    def test_bottleneck_label(self, problem_9b):
        candidate = CandidateConfig(tp_lm=8, dp_lm=4)
        starved_generator = objective(
            problem_9b, candidate, 16.0, 24.0, 0.5
        )
        assert starved_generator.bottleneck == "generator"

    def test_vpp_shrinks_warmup(self, problem_9b):
        import dataclasses

        candidate = CandidateConfig(tp_lm=8, dp_lm=4)
        base = objective(problem_9b, candidate, 4.0, 32.0, 4.0)
        vpp_problem = dataclasses.replace(problem_9b, vpp=4)
        # Share the profiled tables to keep the comparison exact.
        vpp_problem._profiler = problem_9b.profiler()
        vpp = objective(vpp_problem, candidate, 4.0, 32.0, 4.0)
        assert vpp.warmup < base.warmup
        assert vpp.steady == pytest.approx(base.steady)

    def test_rejects_non_positive_resources(self, problem_9b):
        with pytest.raises(ValueError):
            objective(
                problem_9b, CandidateConfig(tp_lm=8, dp_lm=4), 0.0, 32.0, 4.0
            )

    def test_frozen_modules_cheaper(self, problem_9b, data_profile):
        """Freezing the LLM (dX-only backward) lowers its C time."""
        import dataclasses

        from repro.runtime.frozen import FROZEN_PRESETS

        frozen_problem = dataclasses.replace(
            problem_9b, frozen=FROZEN_PRESETS["encoder-only"]
        )
        frozen_problem._profiler = None  # re-profile with new flags
        full = module_sample_time(problem_9b, "llm", 8)
        frozen = module_sample_time(frozen_problem, "llm", 8)
        assert frozen < full
