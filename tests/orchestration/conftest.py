"""Shared orchestration fixtures (profiling is cached per session)."""

import pytest

from repro.cluster.cluster import make_cluster
from repro.data.synthetic import SyntheticMultimodalDataset
from repro.models.mllm import MLLM_9B, MLLM_72B
from repro.orchestration.problem import OrchestrationProblem, SampleProfile


@pytest.fixture(scope="session")
def data_profile():
    dataset = SyntheticMultimodalDataset(seed=1)
    return SampleProfile.from_samples(dataset.take(128))


@pytest.fixture(scope="session")
def problem_9b(data_profile):
    return OrchestrationProblem(
        mllm=MLLM_9B,
        cluster=make_cluster(48),
        global_batch_size=64,
        profile=data_profile,
    )


@pytest.fixture(scope="session")
def problem_72b(data_profile):
    return OrchestrationProblem(
        mllm=MLLM_72B,
        cluster=make_cluster(96),
        global_batch_size=40,
        profile=data_profile,
    )
