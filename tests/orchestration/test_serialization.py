"""Launch-configuration serialization tests (section 6)."""

import json

import pytest

from repro.cluster.cluster import make_cluster
from repro.models.mllm import MLLM_9B
from repro.orchestration.serialization import (
    load_plan,
    parallelism_plan_from_dict,
    parallelism_plan_to_dict,
    plan_from_dict,
    plan_to_dict,
    save_plan,
)
from repro.parallelism.orchestration_plan import ModelOrchestrationPlan
from repro.parallelism.plan import ParallelismPlan


def sample_plan():
    return ModelOrchestrationPlan(
        mllm=MLLM_9B,
        cluster=make_cluster(48),
        encoder_plan=ParallelismPlan(tp=1, pp=1, dp=6),
        llm_plan=ParallelismPlan(tp=8, pp=2, dp=2, vpp=2),
        generator_plan=ParallelismPlan(tp=1, pp=1, dp=4),
        label="disttrain",
    )


class TestParallelismPlanRoundTrip:
    def test_round_trip(self):
        plan = ParallelismPlan(tp=4, pp=2, dp=3, vpp=2, ep=1)
        assert parallelism_plan_from_dict(
            parallelism_plan_to_dict(plan)
        ) == plan

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError):
            parallelism_plan_from_dict({"tp": 1, "zp": 4})


class TestPlanRoundTrip:
    def test_dict_round_trip(self):
        original = sample_plan()
        restored = plan_from_dict(plan_to_dict(original))
        assert restored.plans == original.plans
        assert restored.mllm.name == original.mllm.name
        assert restored.cluster.num_gpus == original.cluster.num_gpus
        assert restored.label == original.label

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "launch.json"
        save_plan(sample_plan(), path)
        restored = load_plan(path)
        assert restored.plans == sample_plan().plans
        # The file is plain JSON a controller can parse.
        data = json.loads(path.read_text())
        assert data["model"] == "mllm-9b"
        assert data["units"]["llm"]["tp"] == 8

    def test_version_checked(self):
        data = plan_to_dict(sample_plan())
        data["version"] = 99
        with pytest.raises(ValueError):
            plan_from_dict(data)

    def test_unknown_model_rejected(self):
        data = plan_to_dict(sample_plan())
        data["model"] = "mllm-1t"
        with pytest.raises(KeyError):
            plan_from_dict(data)

    def test_missing_unit_rejected(self):
        data = plan_to_dict(sample_plan())
        del data["units"]["generator"]
        with pytest.raises(KeyError):
            plan_from_dict(data)

    def test_custom_model_rejected(self):
        import dataclasses

        custom = dataclasses.replace(MLLM_9B, name="custom-mllm")
        plan = ModelOrchestrationPlan(
            mllm=custom,
            cluster=make_cluster(48),
            encoder_plan=ParallelismPlan(dp=1),
            llm_plan=ParallelismPlan(tp=8, dp=2),
            generator_plan=ParallelismPlan(dp=1),
        )
        with pytest.raises(ValueError):
            plan_to_dict(plan)


class TestEndToEnd:
    def test_planned_then_loaded_plan_simulates(self, tmp_path):
        """Manager decides -> config file -> launcher simulates."""
        from repro.core.api import plan as run_planner
        from repro.core.config import DistTrainConfig
        from repro.data.synthetic import SyntheticMultimodalDataset
        from repro.runtime.iteration import TrainingIterationSimulator

        config = DistTrainConfig.preset("mllm-9b", 48, 32)
        result = run_planner(config)
        path = tmp_path / "plan.json"
        save_plan(result.plan, path)

        loaded = load_plan(path)
        simulator = TrainingIterationSimulator(loaded)
        batch = SyntheticMultimodalDataset(seed=0).take(32)
        iteration = simulator.simulate(batch)
        assert iteration.mfu > 0.1
