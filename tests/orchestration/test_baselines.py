"""Baseline orchestrator tests."""

import pytest

from repro.orchestration.adaptive import AdaptiveOrchestrator
from repro.orchestration.baselines import (
    DistMMOrchestrator,
    MegatronOrchestrator,
)


class TestMegatron:
    @pytest.fixture(scope="class")
    def result(self, problem_9b):
        return MegatronOrchestrator(problem_9b).plan()

    def test_monolithic_flag(self, result):
        assert result.plan.monolithic
        assert result.plan.label == "megatron-lm"

    def test_uniform_tp_for_llm(self, result):
        assert result.plan.plans["llm"].tp == 8

    def test_encoder_generator_one_node_per_replica(self, result):
        """The small modules occupy one TP-group-wide stage, replicated
        across its GPUs (tp=1, dp=8*dp_lm)."""
        dp_lm = result.plan.plans["llm"].dp
        assert result.plan.plans["encoder"].num_gpus == 8 * dp_lm
        assert result.plan.plans["generator"].num_gpus == 8 * dp_lm

    def test_published_pp_for_7b(self, result):
        assert result.plan.plans["llm"].pp == 1

    def test_published_pp_for_70b(self, problem_72b):
        result = MegatronOrchestrator(problem_72b).plan()
        assert result.plan.plans["llm"].pp == 10

    def test_fits_cluster(self, result, problem_9b):
        assert result.plan.num_gpus <= problem_9b.num_gpus


class TestDistMM:
    @pytest.fixture(scope="class")
    def result(self, problem_9b):
        return DistMMOrchestrator(problem_9b).plan()

    def test_label(self, result):
        assert result.plan.label == "distmm*"
        assert not result.plan.monolithic

    def test_flops_proportional_allocation(self, result, problem_9b):
        """The generator at 512^2 costs less than the encoder here, so
        FLOPs-proportional allocation mirrors that ordering."""
        plans = result.plan.plans
        assert plans["llm"].num_gpus > plans["encoder"].num_gpus
        assert plans["llm"].num_gpus > plans["generator"].num_gpus

    def test_fits_cluster(self, result, problem_9b):
        assert result.plan.num_gpus <= problem_9b.num_gpus


class TestOrdering:
    def test_disttrain_predicts_best_iteration_time(self, problem_9b):
        """On the shared analytic objective, DistTrain's plan must be at
        least as good as both baselines' plans."""
        ours = AdaptiveOrchestrator(problem_9b).plan()
        megatron = MegatronOrchestrator(problem_9b).plan()
        distmm = DistMMOrchestrator(problem_9b).plan()
        assert (
            ours.predicted_iteration_time
            <= megatron.predicted_iteration_time * 1.05
        )
        assert (
            ours.predicted_iteration_time
            <= distmm.predicted_iteration_time * 1.05
        )
