"""Convex resource-split subproblem tests."""

import numpy as np
import pytest

from repro.orchestration.convex import (
    solve_resource_split,
    waterfill_split,
)


class TestWaterfill:
    def test_proportional_allocation(self):
        x, y, z = waterfill_split(1.0, 2.0, 1.0, 100.0)
        assert (x, y, z) == (25.0, 50.0, 25.0)

    def test_equalizes_ratios(self):
        a, b, c = 3.0, 7.0, 2.0
        x, y, z = waterfill_split(a, b, c, 60.0)
        assert a / x == pytest.approx(b / y) == pytest.approx(c / z)

    def test_invalid_coefficients(self):
        with pytest.raises(ValueError):
            waterfill_split(0.0, 0.0, 0.0, 10.0)


class TestSolver:
    def solve(self, **kwargs):
        defaults = dict(
            warm_x=1.0,
            warm_z=1.0,
            steady_x=5.0,
            steady_y=50.0,
            steady_z=5.0,
            num_microbatches=20,
            budget=100.0,
        )
        defaults.update(kwargs)
        return solve_resource_split(**defaults)

    def test_converges(self):
        solution = self.solve()
        assert solution.converged

    def test_budget_respected(self):
        solution = self.solve()
        assert solution.total <= 100.0 + 1e-6

    def test_minimums_respected(self):
        solution = self.solve(x_min=10.0, z_min=12.0)
        assert solution.x >= 10.0 - 1e-9
        assert solution.z >= 12.0 - 1e-9

    def test_llm_dominates_allocation(self):
        solution = self.solve()
        assert solution.y > solution.x
        assert solution.y > solution.z

    def test_matches_grid_search(self):
        """The SLSQP optimum must match a brute-force grid scan."""
        solution = self.solve()

        def objective(x, y, z):
            t = max(5.0 / x, 50.0 / y, 5.0 / z)
            return 1.0 / x + 1.0 / z + 19 * t

        best = np.inf
        grid = np.linspace(1, 98, 140)
        for x in grid:
            for y in grid:
                z = 100.0 - x - y
                if z < 1:
                    continue
                best = min(best, objective(x, y, z))
        assert solution.objective <= best * 1.01

    def test_infeasible_budget_rejected(self):
        with pytest.raises(ValueError):
            self.solve(budget=2.0, x_min=1.0, y_min=1.0, z_min=1.0)

    def test_solve_time_recorded(self):
        assert self.solve().solve_seconds > 0

    def test_single_microbatch_warmup_only(self):
        """With n=1 the steady phase vanishes; the solver minimizes the
        warm-up hyperbolas under the floor constraints."""
        solution = self.solve(num_microbatches=1)
        assert solution.converged
        assert solution.objective == pytest.approx(
            1.0 / solution.x + 1.0 / solution.z, rel=1e-3
        )
