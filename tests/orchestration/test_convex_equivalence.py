"""Equivalence suite: the batched analytic solver vs the SLSQP oracle.

The analytic engine (:func:`solve_resource_split_batch`) enumerates KKT
active-set patterns in closed form; SLSQP
(:func:`solve_resource_split`) is the retained oracle, mirroring the
kernel's ``run_reference`` pattern. Three layers of evidence:

* **hypothesis sweep** — randomized coefficients, budgets, microbatch
  counts, and floors: the analytic optimum respects every constraint,
  never does worse than the oracle, and cannot be improved by local
  feasible perturbations (a KKT probe that needs no oracle at all);
* **active-set corner cases** — each closed-form pattern pinned by a
  directed example (budget-exhausting floors, warm-up-only ``n = 1``,
  steady-dominated, floor-pinned sides);
* **plan identity** — the full adaptive search run with
  ``solver="analytic"`` and ``solver="slsqp"`` picks identical plans
  (or objective-equal within 1e-9) on the existing cluster/model
  matrix.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.orchestration.adaptive import AdaptiveOrchestrator
from repro.orchestration.convex import (
    solve_resource_split,
    solve_resource_split_batch,
)

positive = st.floats(
    min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False
)
floors = st.floats(
    min_value=0.5, max_value=8.0, allow_nan=False, allow_infinity=False
)


def true_objective(Wx, Wz, B, A, C, n_mb, x, y, z):
    n = max(0, n_mb - 1)
    return Wx / x + Wz / z + n * max(B / x, A / y, C / z)


class TestAnalyticVsOracle:
    @settings(max_examples=200, deadline=None)
    @given(
        Wx=positive, Wz=positive, B=positive, A=positive, C=positive,
        n_mb=st.integers(min_value=1, max_value=96),
        xm=floors, ym=floors, zm=floors,
        slack=st.floats(min_value=1.0, max_value=40.0),
    )
    def test_never_worse_than_slsqp(
        self, Wx, Wz, B, A, C, n_mb, xm, ym, zm, slack
    ):
        budget = (xm + ym + zm) * slack
        batch = solve_resource_split_batch(
            Wx, Wz, B, A, C, n_mb, budget, xm, ym, zm
        )
        x, y, z = float(batch.x[0]), float(batch.y[0]), float(batch.z[0])
        obj = float(batch.objective[0])

        # Feasibility: floors and budget respected (same tolerance the
        # oracle's own tests use).
        assert x >= xm - 1e-6 and y >= ym - 1e-6 and z >= zm - 1e-6
        assert x + y + z <= budget + 1e-6
        # The reported objective is the true objective at the point.
        assert obj == pytest.approx(
            true_objective(Wx, Wz, B, A, C, n_mb, x, y, z), rel=1e-9
        )

        oracle = solve_resource_split(
            Wx, Wz, B, A, C, n_mb, budget, xm, ym, zm
        )
        # The closed-form optimum never does worse than the oracle —
        # when the oracle produced a meaningful answer. SLSQP overruns
        # constraints within its own tolerance (~1e-7 of budget), which
        # at steep gradients buys it real objective (credited below with
        # a first-order sensitivity bound); and on degenerate problems
        # (e.g. a single-point feasible set) it can fail outright with a
        # wildly infeasible iterate, where no comparison is meaningful.
        ox, oy, oz = oracle.x, oracle.y, oracle.z
        violation = (
            max(0.0, ox + oy + oz - budget)
            + max(0.0, xm - ox)
            + max(0.0, ym - oy)
            + max(0.0, zm - oz)
        )
        if oracle.converged and violation <= 1e-5 * budget:
            n = max(0, n_mb - 1)
            sensitivity = violation * (
                Wx / ox**2 + Wz / oz**2
                + n * (A / oy**2 + B / ox**2 + C / oz**2)
            )
            scale = max(abs(oracle.objective), 1.0)
            assert obj <= oracle.objective + sensitivity + 1e-7 * scale
        # No reverse assertion: a "converged" SLSQP is not necessarily
        # optimal — with n_mb = 1 (or a slack epigraph) the problem is
        # flat in y and SLSQP legitimately stops at wasteful points the
        # analytic solver improves on. Analytic optimality is pinned by
        # the never-worse direction plus the KKT perturbation probe.

    @settings(max_examples=100, deadline=None)
    @given(
        Wx=positive, Wz=positive, B=positive, A=positive, C=positive,
        n_mb=st.integers(min_value=1, max_value=96),
        xm=floors, ym=floors, zm=floors,
        slack=st.floats(min_value=1.0, max_value=40.0),
    )
    def test_local_optimality_probe(
        self, Wx, Wz, B, A, C, n_mb, xm, ym, zm, slack
    ):
        """KKT check without the oracle: no small feasible reallocation
        between any pair of variables improves the objective."""
        budget = (xm + ym + zm) * slack
        batch = solve_resource_split_batch(
            Wx, Wz, B, A, C, n_mb, budget, xm, ym, zm
        )
        x, y, z = float(batch.x[0]), float(batch.y[0]), float(batch.z[0])
        base = true_objective(Wx, Wz, B, A, C, n_mb, x, y, z)
        eps = 1e-4 * budget
        moves = [
            (dx, dy, dz)
            for dx, dy, dz in (
                (eps, -eps, 0), (-eps, eps, 0), (eps, 0, -eps),
                (-eps, 0, eps), (0, eps, -eps), (0, -eps, eps),
            )
        ]
        for dx, dy, dz in moves:
            nx, ny, nz = x + dx, y + dy, z + dz
            if nx < xm or ny < ym or nz < zm:
                continue
            perturbed = true_objective(Wx, Wz, B, A, C, n_mb, nx, ny, nz)
            # First-order optimality: improvements, if any, vanish
            # faster than the step (tolerance ~ eps^2 curvature).
            assert perturbed >= base - 1e-6 * max(base, 1.0)

    @settings(max_examples=50, deadline=None)
    @given(
        data=st.lists(
            st.tuples(
                positive, positive, positive, positive, positive,
                st.integers(min_value=1, max_value=64),
                floors, floors, floors,
                st.floats(min_value=1.0, max_value=30.0),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_batch_matches_elementwise(self, data):
        """Solving B rows at once equals solving each row alone."""
        Wx, Wz, B, A, C, n_mb, xm, ym, zm, slack = map(
            np.asarray, zip(*data)
        )
        budget = (xm + ym + zm) * slack
        batched = solve_resource_split_batch(
            Wx, Wz, B, A, C, n_mb, budget, xm, ym, zm
        )
        for i in range(len(data)):
            single = solve_resource_split_batch(
                Wx[i], Wz[i], B[i], A[i], C[i], int(n_mb[i]),
                float(budget[i]), xm[i], ym[i], zm[i],
            )
            assert batched.x[i] == single.x[0]
            assert batched.y[i] == single.y[0]
            assert batched.z[i] == single.z[0]
            assert batched.objective[i] == single.objective[0]


class TestActiveSetCorners:
    def solve_pair(self, **kw):
        defaults = dict(
            warm_x=1.0, warm_z=1.0, steady_x=5.0, steady_y=50.0,
            steady_z=5.0, num_microbatches=20, budget=100.0,
            x_min=1.0, y_min=1.0, z_min=1.0,
        )
        defaults.update(kw)
        batch = solve_resource_split_batch(**defaults)
        oracle = solve_resource_split(**defaults)
        return batch, oracle

    def test_floors_exhaust_budget(self):
        batch, _ = self.solve_pair(
            budget=30.0, x_min=10.0, y_min=10.0, z_min=10.0
        )
        assert batch.x[0] == pytest.approx(10.0)
        assert batch.y[0] == pytest.approx(10.0)
        assert batch.z[0] == pytest.approx(10.0)

    def test_warmup_only_single_microbatch(self):
        """n = 1: the steady term vanishes; y drops to its floor and the
        remainder splits between x and z by the square-root rule."""
        batch, oracle = self.solve_pair(
            num_microbatches=1, warm_x=4.0, warm_z=1.0, y_min=2.0
        )
        assert batch.y[0] == pytest.approx(2.0)
        # sqrt-rule: x/z = sqrt(4)/sqrt(1) = 2.
        assert batch.x[0] / batch.z[0] == pytest.approx(2.0, rel=1e-6)
        assert batch.objective[0] <= oracle.objective + 1e-9

    def test_steady_dominated_waterfills(self):
        """Huge n: warm-up is negligible and the split approaches the
        three-way waterfilling ratio."""
        batch, _ = self.solve_pair(
            num_microbatches=10_000, warm_x=1e-6, warm_z=1e-6,
            steady_x=10.0, steady_y=80.0, steady_z=10.0,
        )
        assert batch.x[0] == pytest.approx(10.0, rel=1e-3)
        assert batch.y[0] == pytest.approx(80.0, rel=1e-3)
        assert batch.z[0] == pytest.approx(10.0, rel=1e-3)

    def test_floor_pinned_side(self):
        batch, oracle = self.solve_pair(x_min=30.0)
        assert batch.x[0] >= 30.0 - 1e-9
        assert batch.objective[0] <= oracle.objective + 1e-9

    def test_infeasible_budget_raises(self):
        with pytest.raises(ValueError):
            solve_resource_split_batch(
                1.0, 1.0, 5.0, 50.0, 5.0, 20, budget=2.0,
                x_min=1.0, y_min=1.0, z_min=1.0,
            )

    def test_mixed_feasible_infeasible_batch_raises(self):
        with pytest.raises(ValueError):
            solve_resource_split_batch(
                np.array([1.0, 1.0]),
                np.array([1.0, 1.0]),
                np.array([5.0, 5.0]),
                np.array([50.0, 50.0]),
                np.array([5.0, 5.0]),
                np.array([20, 20]),
                budget=np.array([100.0, 2.0]),
            )


class TestPlanIdentity:
    """The full search picks the same plan under both solvers."""

    @pytest.fixture(scope="class")
    def problems(self, problem_9b, problem_72b):
        return {"9b@48": problem_9b, "72b@96": problem_72b}

    @pytest.mark.parametrize("key", ["9b@48", "72b@96"])
    def test_analytic_matches_slsqp_plan(self, problems, key):
        problem = problems[key]
        analytic = AdaptiveOrchestrator(problem, solver="analytic").plan()
        oracle = AdaptiveOrchestrator(problem, solver="slsqp").plan()
        same_plan = (
            analytic.plan.plans["encoder"] == oracle.plan.plans["encoder"]
            and analytic.plan.plans["llm"] == oracle.plan.plans["llm"]
            and analytic.plan.plans["generator"]
            == oracle.plan.plans["generator"]
        )
        objective_equal = analytic.breakdown.total == pytest.approx(
            oracle.breakdown.total, abs=1e-9
        )
        assert same_plan or objective_equal
        # Same candidate enumeration either way.
        assert analytic.convex_solutions == oracle.convex_solutions
        assert analytic.candidates_evaluated == oracle.candidates_evaluated

    def test_unknown_solver_rejected(self, problem_9b):
        with pytest.raises(ValueError):
            AdaptiveOrchestrator(problem_9b, solver="cvxpy")
