"""Incremental replanning: warm-started searches are cold searches.

The adaptive search's shortlist-refinement makespans are pure functions
of plan *structure* (the per-module parallelism tuple) and node type —
never of the cluster GPU count — so a replan at a neighboring size can
seed its refinement memo from the cached neighbor's
``refined_portfolio`` and skip only simulations whose result it already
knows. The chosen plan must therefore be bit-identical to a cold
search; these tests pin that across random elastic resize walks, plus
the :meth:`~repro.orchestration.plancache.PlanCache.nearest` peek the
warm start rides on.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.api import _problem, _replan_uncached
from repro.core.config import DistTrainConfig
from repro.orchestration.adaptive import (
    AdaptiveOrchestrator,
    replan_for_cluster,
)
from repro.orchestration.errors import InfeasibleClusterError
from repro.orchestration.plancache import (
    PLAN_CACHE,
    PlanCache,
    planning_signature,
)

CONFIG = DistTrainConfig.preset("mllm-9b", 48, 16)
NODE = CONFIG.cluster.gpus_per_node


def comparable(result):
    """Every deterministic field of an OrchestrationResult — all but
    ``solve_seconds`` (wall-clock) and ``refined_portfolio`` (which
    legitimately grows with whatever a warm start inherited)."""
    return (
        result.plan,
        result.candidate,
        result.breakdown,
        result.candidates_evaluated,
        result.convex_solutions,
        result.simulated_pipeline_seconds,
    )


# --------------------------------------------------------------------- #
# PlanCache.nearest
# --------------------------------------------------------------------- #
def test_nearest_picks_closest_size_for_the_task():
    cache = PlanCache(maxsize=8, name="test-nearest")
    cache.get_or_compute(("task", 32), lambda: "plan32")
    cache.get_or_compute(("task", 48), lambda: "plan48")
    cache.get_or_compute(("other", 40), lambda: "other40")
    assert cache.nearest("task", 40) == (32, "plan32")  # tie -> smaller
    assert cache.nearest("task", 44) == (48, "plan48")
    assert cache.nearest("task", 8) == (32, "plan32")
    assert cache.nearest("task", 48) == (48, "plan48")


def test_nearest_returns_none_for_unknown_task():
    cache = PlanCache(maxsize=8, name="test-nearest-miss")
    cache.get_or_compute(("task", 32), lambda: "plan32")
    assert cache.nearest("elsewhere", 32) is None


def test_nearest_is_a_peek_and_moves_no_counters():
    cache = PlanCache(maxsize=8, name="test-nearest-peek")
    cache.get_or_compute(("task", 32), lambda: "plan32")
    before = cache.stats()
    cache.nearest("task", 40)
    cache.nearest("elsewhere", 40)
    assert cache.stats() == before


# --------------------------------------------------------------------- #
# Warm == cold
# --------------------------------------------------------------------- #
def test_warm_started_neighbor_replan_is_cold_replan():
    """The direct claim, orchestrator-level: seeding the refinement
    memo with a neighbor size's portfolio changes nothing about the
    chosen plan."""
    problem = _problem(CONFIG)
    donor = replan_for_cluster(problem, 48)
    assert donor.refined_portfolio, "search produced no portfolio"
    cold = replan_for_cluster(problem, 40)
    warm = replan_for_cluster(
        problem, 40, warm_start=donor.refined_portfolio
    )
    assert comparable(warm) == comparable(cold)
    # The portfolio a warm search emits covers everything it refined,
    # donor structures included, so the next neighbor inherits both.
    assert set(dict(donor.refined_portfolio)) <= set(
        dict(warm.refined_portfolio)
    )


def test_garbage_warm_start_structures_are_ignored():
    """Portfolio keys that match no candidate structure are dead weight,
    never consulted — a warm start can only skip known simulations."""
    problem = _problem(CONFIG)
    cold = replan_for_cluster(problem, 48)
    poisoned = cold.refined_portfolio + (
        ((("zzz-bogus", 9, 9, 9, 9, 9, 9, 9),), -1.0),
    )
    warm = AdaptiveOrchestrator(problem, warm_start=poisoned).plan()
    assert comparable(warm) == comparable(cold)


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    steps=st.lists(
        st.sampled_from([-NODE, NODE]), min_size=3, max_size=8
    ),
)
def test_elastic_resize_walk_warm_equals_cold(steps):
    """Random ±1-node resize walks through ``api.replan``'s cached
    warm-start path: every size planned along the walk is bit-identical
    to a cold, cache-free search at that size."""
    PLAN_CACHE.clear()
    problem = _problem(CONFIG)
    size = CONFIG.cluster.num_gpus
    seen = set()
    for step in steps:
        size = min(96, max(2 * NODE, size + step))
        if size in seen:
            continue
        seen.add(size)
        try:
            cold = replan_for_cluster(problem, size)
        except InfeasibleClusterError:
            continue
        # The warm path: peek the nearest cached neighbor, seed the
        # search, store the result — exactly what api.replan does.
        warm = PLAN_CACHE.get_or_compute(
            planning_signature(CONFIG, size),
            lambda: _replan_uncached(CONFIG, size),
        )
        assert comparable(warm) == comparable(cold), (
            f"warm != cold at {size} GPUs"
        )
