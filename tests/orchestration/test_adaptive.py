"""Adaptive orchestration (section 4.3) tests."""

import pytest

from repro.orchestration.adaptive import AdaptiveOrchestrator, divisors


class TestDivisors:
    def test_basic(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]

    def test_prime(self):
        assert divisors(13) == [1, 13]

    def test_one(self):
        assert divisors(1) == [1]

    def test_invalid(self):
        with pytest.raises(ValueError):
            divisors(0)


@pytest.fixture(scope="module")
def result_9b(problem_9b):
    return AdaptiveOrchestrator(problem_9b).plan()


@pytest.fixture(scope="module")
def result_72b(problem_72b):
    return AdaptiveOrchestrator(problem_72b).plan()


class TestPlanFeasibility:
    def test_fits_cluster(self, result_9b, problem_9b):
        assert result_9b.plan.num_gpus <= problem_9b.num_gpus

    def test_batch_divisible(self, result_9b, problem_9b):
        result_9b.plan.validate(problem_9b.global_batch_size)

    def test_llm_gets_most_gpus(self, result_9b):
        plans = result_9b.plan.plans
        assert plans["llm"].num_gpus > plans["encoder"].num_gpus
        assert plans["llm"].num_gpus > plans["generator"].num_gpus

    def test_small_modules_replicated_not_sharded(self, result_9b):
        """One GPU suffices for ViT/SD, so DistTrain replicates them
        (tp=1) rather than tensor-parallelizing (section 7.1)."""
        plans = result_9b.plan.plans
        assert plans["encoder"].tp == 1
        assert plans["generator"].tp == 1

    def test_llm_pp_divides_layers(self, result_9b, problem_9b):
        pp = result_9b.plan.plans["llm"].pp
        assert problem_9b.mllm.llm.num_layers % pp == 0

    def test_not_monolithic(self, result_9b):
        assert not result_9b.plan.monolithic
        assert result_9b.plan.label == "disttrain"


class TestPlanQuality:
    def test_solver_runs_fast(self, result_9b):
        """Table 3: the algorithm completes in well under a second at
        ablation scale."""
        assert result_9b.solve_seconds < 2.0

    def test_explores_many_candidates(self, result_9b):
        assert result_9b.candidates_evaluated > 10
        assert result_9b.convex_solutions > 3

    def test_predicted_time_positive(self, result_9b):
        assert result_9b.predicted_iteration_time > 0
        assert result_9b.breakdown.warmup > 0
        assert result_9b.breakdown.steady > 0

    def test_stage_times_roughly_balanced(self, result_9b):
        """Disaggregation's goal: no module's stage time dominates."""
        b = result_9b.breakdown
        slowest = max(
            b.stage_time_llm, b.stage_time_encoder, b.stage_time_generator
        )
        assert b.stage_time_llm == pytest.approx(slowest)

    def test_72b_uses_pipeline_parallelism(self, result_72b):
        assert result_72b.plan.plans["llm"].pp >= 2
        assert result_72b.plan.plans["llm"].tp >= 4


class TestClusterTooSmall:
    def test_raises_cleanly(self, data_profile):
        from repro.cluster.cluster import make_cluster
        from repro.models.mllm import MLLM_72B
        from repro.orchestration.problem import OrchestrationProblem

        tiny = OrchestrationProblem(
            mllm=MLLM_72B,
            cluster=make_cluster(8),
            global_batch_size=8,
            profile=data_profile,
        )
        with pytest.raises(RuntimeError):
            AdaptiveOrchestrator(tiny).plan()
