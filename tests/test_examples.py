"""Smoke tests: every shipped example must run end-to-end.

Examples are part of the public surface; these tests import each one and
execute its ``main()`` so refactors cannot silently break them. The
paper-scale planner example is exercised at reduced scale through the
same code path it demonstrates.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart",
    "data_reordering_demo",
    "heterogeneous_hardware",
    "moe_expert_parallelism",
    "audio_modality",
    "campaign_sweep",
    "scenario_dynamics",
    "fleet_contention",
]


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main() if hasattr(module, "main") else None
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_examples_directory_complete():
    shipped = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    expected = set(FAST_EXAMPLES) | {
        "orchestration_planner",
        "frozen_training_phases",
    }
    assert expected <= shipped
