"""Audio modality in the data pipeline."""

import dataclasses

import numpy as np
import pytest

from repro.data.distributions import (
    DataDistributionConfig,
    sample_audio_subsequence_tokens,
)
from repro.data.sample import Subsequence, TrainingSample
from repro.data.synthetic import SyntheticMultimodalDataset

AUDIO_CONFIG = DataDistributionConfig(audio_fraction=0.5)


class TestAudioDistribution:
    def test_support(self):
        rng = np.random.default_rng(0)
        tokens = [
            sample_audio_subsequence_tokens(rng, AUDIO_CONFIG)
            for _ in range(500)
        ]
        assert min(tokens) >= 50  # >= 1 second
        assert max(tokens) <= 30 * 50  # <= 30 seconds


class TestAudioSamples:
    def test_audio_subsequence_allowed(self):
        sub = Subsequence("audio", 500, raw_bytes=320_000)
        sample = TrainingSample(sample_id=0, subsequences=(sub,))
        assert sample.audio_tokens == 500
        assert sample.num_audio_clips == 1
        assert sample.size == 500  # audio counts toward straggler size
        assert sample.workload().audio_tokens == 500

    def test_mixed_modalities_total(self):
        sample = TrainingSample(
            sample_id=0,
            subsequences=(
                Subsequence("text", 100),
                Subsequence("image", 1024),
                Subsequence("audio", 500),
            ),
        )
        assert sample.total_tokens == 1624
        assert sample.size == 1524


class TestAudioStream:
    def test_default_stream_has_no_audio(self):
        dataset = SyntheticMultimodalDataset(seed=0)
        samples = dataset.take(100)
        assert all(s.audio_tokens == 0 for s in samples)

    def test_audio_enabled_stream(self):
        dataset = SyntheticMultimodalDataset(seed=0, config=AUDIO_CONFIG)
        samples = dataset.take(200)
        with_audio = [s for s in samples if s.audio_tokens > 0]
        assert len(with_audio) > 20
        assert all(s.total_tokens <= 8192 for s in samples)

    def test_audio_stream_deterministic(self):
        a = SyntheticMultimodalDataset(seed=3, config=AUDIO_CONFIG).take(50)
        b = SyntheticMultimodalDataset(seed=3, config=AUDIO_CONFIG).take(50)
        assert [s.audio_tokens for s in a] == [s.audio_tokens for s in b]
