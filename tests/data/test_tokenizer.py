"""Synthetic tokenizer tests."""

import pytest

from repro.data.tokenizer import SyntheticTokenizer


class TestTokenizer:
    def setup_method(self):
        self.tok = SyntheticTokenizer()

    def test_empty(self):
        assert self.tok.count_tokens(b"") == 0
        assert self.tok.encode(b"") == []

    def test_count_rate(self):
        text = b"x" * 400
        assert self.tok.count_tokens(text) == 100

    def test_minimum_one_token(self):
        assert self.tok.count_tokens(b"a") == 1

    def test_encode_deterministic(self):
        a = self.tok.encode(b"hello world")
        b = self.tok.encode(b"hello world")
        assert a == b

    def test_encode_differs_per_input(self):
        assert self.tok.encode(b"hello") != self.tok.encode(b"world")

    def test_ids_in_vocab(self):
        ids = self.tok.encode(b"some reasonably long test string" * 10)
        assert all(0 <= i < self.tok.vocab_size for i in ids)

    def test_encode_length_matches_count(self):
        text = b"q" * 1000
        assert len(self.tok.encode(text)) == self.tok.count_tokens(text)

    def test_decode_length_roundtrip(self):
        text = b"z" * 400
        ids = self.tok.encode(text)
        assert self.tok.decode_length(ids) == pytest.approx(400, abs=4)
