"""Training sample primitive tests."""

import pytest

from repro.data.sample import (
    Microbatch,
    Subsequence,
    TrainingSample,
    make_microbatches,
)


def sample(sample_id=0, text=100, image_tokens=(1024, 2048)):
    subs = [Subsequence("text", text)]
    for tokens in image_tokens:
        subs.append(
            Subsequence(
                "image", tokens, raw_bytes=tokens * 128, pixels=tokens * 256
            )
        )
    return TrainingSample(sample_id=sample_id, subsequences=tuple(subs))


class TestSubsequence:
    def test_modality_validation(self):
        with pytest.raises(ValueError):
            Subsequence("video", 10)

    def test_negative_fields(self):
        with pytest.raises(ValueError):
            Subsequence("text", -1)


class TestTrainingSample:
    def test_token_accounting(self):
        s = sample()
        assert s.text_tokens == 100
        assert s.image_tokens == 3072
        assert s.num_images == 2
        assert s.total_tokens == 3172
        assert s.padding_tokens == 8192 - 3172

    def test_size_is_image_tokens(self):
        assert sample().size == 3072

    def test_raw_bytes_and_pixels(self):
        s = sample()
        assert s.raw_bytes == 3072 * 128
        assert s.pixels == 3072 * 256

    def test_workload(self):
        w = sample().workload()
        assert w.samples == 1
        assert w.image_tokens == 3072
        assert w.sequence_tokens == 3172

    def test_image_token_sizes(self):
        assert sample().image_token_sizes() == [1024, 2048]


class TestMicrobatch:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Microbatch(())

    def test_size_sums_samples(self):
        mb = Microbatch((sample(0), sample(1)))
        assert mb.size == 2 * 3072
        assert mb.num_samples == 2

    def test_workload_sums(self):
        mb = Microbatch((sample(0), sample(1)))
        w = mb.workload()
        assert w.samples == 2
        assert w.image_tokens == 2 * 3072


class TestMakeMicrobatches:
    def test_even_split(self):
        mbs = make_microbatches([sample(i) for i in range(6)], 2)
        assert len(mbs) == 3
        assert all(mb.num_samples == 2 for mb in mbs)

    def test_uneven_rejected(self):
        with pytest.raises(ValueError):
            make_microbatches([sample(i) for i in range(5)], 2)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            make_microbatches([sample(0)], 0)
