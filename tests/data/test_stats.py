"""Dataset statistics tests."""

import numpy as np
import pytest

from repro.data.sample import Subsequence, TrainingSample
from repro.data.stats import DatasetStatistics, histogram_density
from repro.data.synthetic import SyntheticMultimodalDataset


class TestHistogramDensity:
    def test_density_integrates_to_one(self):
        rng = np.random.default_rng(0)
        values = rng.lognormal(3, 1, 5000)
        centers, density = histogram_density(values, bins=50)
        width = centers[1] - centers[0]
        assert (density * width).sum() == pytest.approx(1.0, rel=1e-6)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            histogram_density([])

    def test_range_clipping(self):
        centers, _ = histogram_density([1, 2, 3], bins=4, value_range=(0, 4))
        assert centers.min() > 0 and centers.max() < 4


class TestDatasetStatistics:
    def setup_method(self):
        self.stats = DatasetStatistics(
            SyntheticMultimodalDataset(seed=5).take(300)
        )

    def test_series_non_empty(self):
        assert len(self.stats.text_subsequence_sizes()) > 0
        assert len(self.stats.image_subsequence_sizes()) > 0
        assert len(self.stats.image_counts()) == 300

    def test_image_subsequences_skewed_right(self):
        sizes = np.array(self.stats.image_subsequence_sizes())
        assert self.stats.skewness(sizes) > 0.5

    def test_percentile_spread(self):
        assert self.stats.percentile_spread() > 1.0

    def test_summary_keys(self):
        summary = self.stats.summary()
        for key in (
            "num_samples",
            "mean_image_tokens",
            "cv_image_tokens",
            "p90_p10_spread",
        ):
            assert key in summary

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            DatasetStatistics([])

    def test_cv_zero_for_identical(self):
        sample = TrainingSample(
            sample_id=0,
            subsequences=(Subsequence("image", 1000),),
        )
        uniform = DatasetStatistics([sample, sample, sample])
        assert uniform.sample_size_cv() == 0.0
