"""Distribution sampler tests (Figure 5 calibration)."""

import numpy as np
import pytest

from repro.data.distributions import (
    LAION_400M_LIKE,
    DataDistributionConfig,
    sample_image_count,
    sample_image_side_pixels,
    sample_image_subsequence_tokens,
    sample_text_subsequence_tokens,
)


def draws(fn, n=2000, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    return np.array([fn(rng, **kwargs) for _ in range(n)])


class TestTextSizes:
    def test_support(self):
        values = draws(sample_text_subsequence_tokens)
        assert values.min() >= 1
        assert values.max() <= LAION_400M_LIKE.text_max_tokens

    def test_skewed_right(self):
        values = draws(sample_text_subsequence_tokens)
        assert np.median(values) < values.mean() * 1.2
        assert values.std() > 10


class TestImageSizes:
    def test_token_support_matches_figure5b(self):
        values = draws(sample_image_subsequence_tokens)
        assert values.min() >= (64 // 16) ** 2
        assert values.max() <= 4096

    def test_sides_snapped_to_patch_grid(self):
        values = draws(sample_image_side_pixels, n=500)
        assert np.all(values % 16 == 0)
        assert values.max() <= 1024

    def test_tokens_are_perfect_squares(self):
        values = draws(sample_image_subsequence_tokens, n=500)
        roots = np.sqrt(values)
        assert np.allclose(roots, np.round(roots))


class TestImageCounts:
    def test_support_matches_figure5c(self):
        values = draws(sample_image_count)
        assert values.min() >= 0
        assert values.max() <= LAION_400M_LIKE.max_images

    def test_mode_in_low_range(self):
        values = draws(sample_image_count)
        assert 3 <= np.median(values) <= 12


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a = draws(sample_image_subsequence_tokens, seed=7)
        b = draws(sample_image_subsequence_tokens, seed=7)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = draws(sample_image_subsequence_tokens, seed=1)
        b = draws(sample_image_subsequence_tokens, seed=2)
        assert not np.array_equal(a, b)


class TestCustomConfig:
    def test_tight_config(self):
        config = DataDistributionConfig(
            image_min_side=256, image_max_side=256
        )
        values = draws(sample_image_subsequence_tokens, config=config, n=100)
        assert np.all(values == 256)
