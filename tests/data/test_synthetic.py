"""Synthetic dataset tests."""

import numpy as np
import pytest

from repro.data.stats import DatasetStatistics
from repro.data.synthetic import SyntheticMultimodalDataset


class TestGeneration:
    def test_take_count(self):
        ds = SyntheticMultimodalDataset(seed=0)
        assert len(ds.take(37)) == 37

    def test_sequences_well_packed(self):
        """Greedy packing leaves at most one big-image hole per sequence
        (~4K tokens worst case) and >85% fill on average."""
        ds = SyntheticMultimodalDataset(seed=0)
        samples = ds.take(200)
        assert all(s.total_tokens <= 8192 for s in samples)
        assert all(s.total_tokens >= 8192 // 2 for s in samples)
        mean_fill = np.mean([s.total_tokens for s in samples]) / 8192
        assert mean_fill > 0.85

    def test_ids_unique_and_increasing(self):
        ds = SyntheticMultimodalDataset(seed=0)
        ids = [s.sample_id for s in ds.take(64)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 64

    def test_invalid_take(self):
        with pytest.raises(ValueError):
            SyntheticMultimodalDataset().take(0)

    def test_global_batches(self):
        ds = SyntheticMultimodalDataset(seed=3)
        batches = list(ds.global_batches(8, num_batches=3))
        assert len(batches) == 3
        assert all(len(b) == 8 for b in batches)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = SyntheticMultimodalDataset(seed=11).take(32)
        b = SyntheticMultimodalDataset(seed=11).take(32)
        assert [s.image_tokens for s in a] == [s.image_tokens for s in b]
        assert [s.text_tokens for s in a] == [s.text_tokens for s in b]

    def test_different_seed_differs(self):
        a = SyntheticMultimodalDataset(seed=1).take(32)
        b = SyntheticMultimodalDataset(seed=2).take(32)
        assert [s.image_tokens for s in a] != [s.image_tokens for s in b]


class TestHeterogeneity:
    """The generated population must carry the paper's straggler
    potential: heavily skewed per-sample image-token counts."""

    def test_sample_size_cv_in_band(self):
        ds = SyntheticMultimodalDataset(seed=42)
        stats = DatasetStatistics(ds.take(600))
        assert 0.3 < stats.sample_size_cv() < 1.2

    def test_text_only_samples_exist(self):
        ds = SyntheticMultimodalDataset(seed=42)
        sizes = [s.image_tokens for s in ds.take(600)]
        assert min(sizes) == 0

    def test_image_heavy_samples_exist(self):
        ds = SyntheticMultimodalDataset(seed=42)
        sizes = [s.image_tokens for s in ds.take(600)]
        assert max(sizes) > 7000
