"""Sequence packing tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.packing import pack_subsequences
from repro.data.sample import Subsequence


def text(tokens):
    return Subsequence("text", tokens)


def image(tokens):
    return Subsequence("image", tokens, raw_bytes=tokens * 10, pixels=tokens * 256)


class TestPacking:
    def test_fits_one_sequence(self):
        samples = pack_subsequences([text(100), image(1000)], seq_len=8192)
        assert len(samples) == 1
        assert samples[0].total_tokens == 1100

    def test_overflow_starts_new_sequence(self):
        samples = pack_subsequences(
            [image(5000), image(5000)], seq_len=8192
        )
        assert len(samples) == 2

    def test_exact_fill_flushes(self):
        samples = pack_subsequences(
            [text(4096), text(4096), text(10)], seq_len=8192
        )
        assert len(samples) == 2
        assert samples[0].total_tokens == 8192

    def test_oversized_subsequence_truncated(self):
        samples = pack_subsequences([image(20000)], seq_len=8192)
        assert len(samples) == 1
        assert samples[0].image_tokens == 8192

    def test_sample_ids_sequential(self):
        samples = pack_subsequences(
            [image(5000)] * 4, seq_len=8192, start_sample_id=10
        )
        assert [s.sample_id for s in samples] == [10, 11, 12, 13]

    def test_invalid_seq_len(self):
        with pytest.raises(ValueError):
            pack_subsequences([text(1)], seq_len=0)

    def test_empty_input(self):
        assert pack_subsequences([], seq_len=8192) == []


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["text", "image"]),
            st.integers(min_value=1, max_value=6000),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_no_tokens_lost(subsequence_spec):
    """Packing preserves every token (none exceed the budget here)."""
    subs = [Subsequence(modality, tokens) for modality, tokens in subsequence_spec]
    samples = pack_subsequences(subs, seq_len=8192)
    total_in = sum(s.tokens for s in subs)
    total_out = sum(s.total_tokens for s in samples)
    assert total_in == total_out
    # Every emitted sample respects the budget.
    assert all(s.total_tokens <= 8192 for s in samples)
    # Subsequence order is preserved.
    flat = [sub.tokens for s in samples for sub in s.subsequences]
    assert flat == [s.tokens for s in subs]
