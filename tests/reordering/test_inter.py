"""Algorithm 2 (inter-microbatch reordering) tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.reordering.baselines import random_order, sorted_order
from repro.reordering.inter import InterReorderer, MicrobatchCostModel


def heterogeneous_costs(l=16, p=4, seed=0, encoder_sigma=0.6):
    """LLM-like pipeline: uniform mid stages, skewed first stage."""
    rng = np.random.default_rng(seed)
    fwd = np.ones((l, p))
    fwd[:, 0] = rng.lognormal(0.0, encoder_sigma, l)
    bwd = 2.0 * fwd
    return MicrobatchCostModel(fwd=fwd, bwd=bwd)


class TestCostModel:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            MicrobatchCostModel(fwd=np.ones((4, 3)), bwd=np.ones((4, 2)))
        with pytest.raises(ValueError):
            MicrobatchCostModel(fwd=np.ones(4), bwd=np.ones(4))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MicrobatchCostModel(fwd=-np.ones((2, 2)), bwd=np.ones((2, 2)))

    def test_accessors(self):
        cm = heterogeneous_costs(l=6, p=3)
        assert cm.num_microbatches == 6
        assert cm.num_stages == 3
        assert cm.total_size(0) > 0


class TestReorder:
    def test_returns_permutation(self):
        reorderer = InterReorderer(heterogeneous_costs())
        order = reorderer.reorder()
        assert sorted(order) == list(range(16))

    def test_smallest_first(self):
        costs = heterogeneous_costs()
        order = InterReorderer(costs).reorder()
        smallest = min(range(16), key=costs.first_stage_fwd)
        assert order[0] == smallest

    def test_rear_holds_small_microbatches(self):
        """The last p-1 positions hold small microbatches (their
        intervals are structurally unfillable)."""
        costs = heterogeneous_costs(l=20, p=4, seed=3)
        order = InterReorderer(costs).reorder()
        rear = order[-3:]
        sizes = sorted(range(20), key=costs.first_stage_fwd)
        assert set(rear) <= set(sizes[:6])

    def test_tiny_inputs_passthrough(self):
        costs = heterogeneous_costs(l=2, p=4)
        assert InterReorderer(costs).reorder() == [0, 1]

    def test_reorder_items_alignment(self):
        costs = heterogeneous_costs(l=6, p=3)
        items = [f"mb{i}" for i in range(6)]
        reordered = InterReorderer(costs).reorder_items(items)
        assert sorted(reordered) == sorted(items)

    def test_reorder_items_length_mismatch(self):
        costs = heterogeneous_costs(l=6, p=3)
        with pytest.raises(ValueError):
            InterReorderer(costs).reorder_items(["a"])

    def test_invalid_vpp(self):
        with pytest.raises(ValueError):
            InterReorderer(heterogeneous_costs(), vpp=0)


class TestEffectiveness:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_no_worse_than_descending_order(self, seed):
        """Descending order front-loads stragglers — the adversarial
        case Figure 7 illustrates. Algorithm 2 must beat it."""
        costs = heterogeneous_costs(l=24, p=4, seed=seed, encoder_sigma=0.9)
        reorderer = InterReorderer(costs)
        ours = reorderer.evaluate(reorderer.reorder())
        worst = reorderer.evaluate(
            sorted_order(
                list(range(24)),
                size=costs.first_stage_fwd,
                descending=True,
            )
        )
        assert ours <= worst + 1e-9

    def test_competitive_with_random_on_average(self):
        costs = heterogeneous_costs(l=24, p=4, seed=5, encoder_sigma=0.9)
        reorderer = InterReorderer(costs)
        ours = reorderer.evaluate(reorderer.reorder())
        randoms = [
            reorderer.evaluate(random_order(list(range(24)), seed=s))
            for s in range(8)
        ]
        assert ours <= np.mean(randoms) * 1.02


class TestVPP:
    def test_vpp_reorder_valid_permutation(self):
        costs = heterogeneous_costs(l=16, p=4)
        order = InterReorderer(costs, vpp=2).reorder()
        assert sorted(order) == list(range(16))

    def test_vpp_evaluation_runs(self):
        costs = heterogeneous_costs(l=16, p=4)
        reorderer = InterReorderer(costs, vpp=2)
        assert reorderer.evaluate(list(range(16))) > 0


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_reorder_always_permutation(seed):
    rng = np.random.default_rng(seed)
    l = int(rng.integers(3, 20))
    p = int(rng.integers(2, 6))
    fwd = rng.uniform(0.1, 3.0, (l, p))
    bwd = rng.uniform(0.1, 5.0, (l, p))
    order = InterReorderer(MicrobatchCostModel(fwd, bwd)).reorder()
    assert sorted(order) == list(range(l))
