"""Algorithm 1 (intra-microbatch reordering) tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.sample import Subsequence, TrainingSample
from repro.reordering.baselines import random_order
from repro.reordering.intra import (
    brute_force_optimal_makespan,
    intra_reorder,
    lpt_partition,
    partition_makespan,
    reordered_makespan,
)


class TestPaperExample:
    def test_figure_11(self):
        """Sizes [4,3,2,1] across 2 DP groups: naive contiguous split
        gives makespan 7 (group [4,3]); reordering balances to 5."""
        sizes = [4.0, 3.0, 2.0, 1.0]
        assert reordered_makespan(sizes, 2) == 7.0
        reordered = intra_reorder(sizes, 2)
        assert reordered_makespan(reordered, 2) == 5.0
        assert sorted(reordered) == sorted(sizes)


class TestLPT:
    def test_group_count(self):
        groups = lpt_partition(list(range(10)), 3)
        assert len(groups) == 3

    def test_invalid_groups(self):
        with pytest.raises(ValueError):
            lpt_partition([1], 0)

    def test_covers_all_samples(self):
        samples = [5.0, 1.0, 3.0, 2.0, 8.0, 1.0]
        groups = lpt_partition(samples, 2)
        assert sorted(x for g in groups for x in g) == sorted(samples)

    def test_balanced_for_identical_sizes(self):
        groups = lpt_partition([1.0] * 12, 4)
        assert partition_makespan(groups) == 3.0


class TestIntraReorder:
    def test_permutation_invariant(self):
        """Reordering must be a permutation: gradient accumulation is
        commutative, so this preserves convergence semantics."""
        rng = np.random.default_rng(0)
        sizes = list(rng.lognormal(7, 1, 64))
        reordered = intra_reorder(sizes, 8)
        assert sorted(reordered) == sorted(sizes)

    def test_equal_group_cardinality(self):
        rng = np.random.default_rng(1)
        sizes = list(rng.lognormal(7, 1, 60))
        reordered = intra_reorder(sizes, 6)
        assert len(reordered) == 60  # 10 per group by construction

    def test_beats_random_order(self):
        rng = np.random.default_rng(2)
        sizes = list(rng.lognormal(7, 1.2, 64))
        ours = reordered_makespan(intra_reorder(sizes, 8), 8)
        rand = np.mean(
            [
                reordered_makespan(random_order(sizes, seed=s), 8)
                for s in range(10)
            ]
        )
        assert ours < rand

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            intra_reorder([1, 2, 3], 2)

    def test_works_on_sample_objects(self):
        samples = [
            TrainingSample(
                sample_id=i,
                subsequences=(Subsequence("image", 100 * (i + 1)),),
            )
            for i in range(8)
        ]
        reordered = intra_reorder(samples, 2)
        assert sorted(s.sample_id for s in reordered) == list(range(8))


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.1, max_value=100, allow_nan=False),
        min_size=4,
        max_size=10,
    ).filter(lambda xs: len(xs) % 2 == 0),
)
def test_lpt_within_4_3_of_optimal(sizes):
    """The paper cites the <4/3 approximation ratio of greedy LPT."""
    groups = lpt_partition(sizes, 2)
    greedy = partition_makespan(groups)
    optimal = brute_force_optimal_makespan(sizes, 2)
    assert greedy <= optimal * 4.0 / 3.0 + 1e-9


def test_brute_force_guard():
    with pytest.raises(ValueError):
        brute_force_optimal_makespan(list(range(20)), 2)
