"""Reordering baseline tests."""

import pytest

from repro.reordering.baselines import (
    random_order,
    round_robin_partition,
    sorted_order,
)


class TestRandomOrder:
    def test_permutation(self):
        items = list(range(20))
        shuffled = random_order(items, seed=0)
        assert sorted(shuffled) == items

    def test_deterministic_by_seed(self):
        items = list(range(20))
        assert random_order(items, seed=1) == random_order(items, seed=1)
        assert random_order(items, seed=1) != random_order(items, seed=2)


class TestSortedOrder:
    def test_ascending_default(self):
        assert sorted_order([3, 1, 2]) == [1, 2, 3]

    def test_descending(self):
        assert sorted_order([3, 1, 2], descending=True) == [3, 2, 1]

    def test_custom_size(self):
        items = [{"s": 3}, {"s": 1}]
        out = sorted_order(items, size=lambda x: x["s"])
        assert out[0]["s"] == 1


class TestRoundRobin:
    def test_deal_pattern(self):
        groups = round_robin_partition(list(range(6)), 2)
        assert groups == [[0, 2, 4], [1, 3, 5]]

    def test_invalid_groups(self):
        with pytest.raises(ValueError):
            round_robin_partition([1], 0)
