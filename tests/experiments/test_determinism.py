"""Campaign determinism: sequential vs multiprocessing execution.

Same spec + seed must yield identical ``ResultFrame`` rows no matter how
the campaign is executed — worker count, scheduling order, and the fork
start method must not leak into results. Metrics are compared exactly
(the simulation substrate is deterministic to the bit), so any
nondeterminism introduced into the planning/simulation path fails here.
"""

from typing import Dict, List

from repro.experiments import Axis, CampaignRunner, SweepSpec
from repro.experiments.runner import derive_trial_seed


def small_spec() -> SweepSpec:
    return SweepSpec(
        name="determinism",
        axes=[Axis("system", ("disttrain", "megatron-lm"))],
        base={"model": "mllm-9b", "gpus": 32, "gbs": 32},
    )


def result_rows(campaign) -> List[Dict]:
    """Comparable row dicts.

    Wall-clock diagnostics (``elapsed_seconds``, the orchestration
    ``solve_seconds`` metric) are stripped; every simulation-derived
    metric must match exactly.
    """
    rows = []
    for record in campaign.records:
        row = record.to_dict()
        row.pop("elapsed_seconds")
        assert row["metrics"].pop("solve_seconds") > 0.0
        rows.append(row)
    return rows


def test_sequential_and_parallel_runs_are_identical():
    sequential = CampaignRunner(
        small_spec(), cache=None, processes=1, derive_seeds=True
    ).run()
    parallel = CampaignRunner(
        small_spec(), cache=None, processes=2, derive_seeds=True
    ).run()
    assert sequential.failed == 0
    assert parallel.failed == 0
    assert result_rows(sequential) == result_rows(parallel)


def test_repeated_sequential_runs_are_identical():
    first = CampaignRunner(small_spec(), cache=None, processes=1).run()
    second = CampaignRunner(small_spec(), cache=None, processes=1).run()
    assert result_rows(first) == result_rows(second)


def test_derived_seeds_are_stable_functions_of_params():
    params = {"model": "mllm-9b", "gpus": 32, "gbs": 32, "system": "disttrain"}
    assert derive_trial_seed(params) == derive_trial_seed(dict(params))
    other = dict(params, system="megatron-lm")
    assert derive_trial_seed(other) != derive_trial_seed(params)
