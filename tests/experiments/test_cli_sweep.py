"""CLI smoke tests for ``repro sweep`` and ``repro report``."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


def run_sweep(cache_dir, tmp_path, extra=()):
    return main([
        "sweep",
        "--models", "mllm-9b",
        "--systems", "disttrain", "megatron-lm",
        "--gpus", "32", "48",
        "--gbs", "8",
        "--cache-dir", cache_dir,
        "--jobs", "1",
        "--quiet",
        *extra,
    ])


class TestSweep:
    def test_sweep_runs_grid(self, cache_dir, tmp_path, capsys):
        code = run_sweep(cache_dir, tmp_path)
        out = capsys.readouterr().out
        assert code == 0
        assert "4 trials (4 executed, 0 cached, 0 failed)" in out
        assert "disttrain" in out and "megatron-lm" in out

    def test_rerun_hits_cache(self, cache_dir, tmp_path, capsys):
        run_sweep(cache_dir, tmp_path)
        capsys.readouterr()
        code = run_sweep(cache_dir, tmp_path)
        out = capsys.readouterr().out
        assert code == 0
        assert "(0 executed, 4 cached, 0 failed)" in out

    def test_output_json(self, cache_dir, tmp_path, capsys):
        results = tmp_path / "results.json"
        code = run_sweep(cache_dir, tmp_path, ["--output", str(results)])
        assert code == 0
        payload = json.loads(results.read_text(encoding="utf-8"))
        assert len(payload["records"]) == 4
        statuses = {record["status"] for record in payload["records"]}
        assert statuses == {"ok"}

    def test_derive_seeds_gives_distinct_seeds(
        self, cache_dir, tmp_path, capsys
    ):
        results = tmp_path / "seeded.json"
        code = main([
            "sweep", "--models", "mllm-9b", "--systems", "disttrain",
            "--gpus", "32", "48", "--gbs", "8", "--derive-seeds",
            "--cache-dir", cache_dir, "--jobs", "1", "--quiet",
            "--output", str(results),
        ])
        assert code == 0
        payload = json.loads(results.read_text(encoding="utf-8"))
        seeds = [record["params"]["seed"] for record in payload["records"]]
        assert len(set(seeds)) == 2

    def test_all_failed_exits_nonzero(self, cache_dir, tmp_path, capsys):
        # 9B monolithic needs >=24 GPUs: megatron-only at 16 always fails.
        code = main([
            "sweep", "--models", "mllm-9b", "--systems", "megatron-lm",
            "--gpus", "16", "--gbs", "8",
            "--cache-dir", cache_dir, "--jobs", "1", "--quiet",
        ])
        assert code == 1


class TestReport:
    def test_report_from_cache(self, cache_dir, tmp_path, capsys):
        run_sweep(cache_dir, tmp_path)
        capsys.readouterr()
        code = main([
            "report", "--cache-dir", cache_dir,
            "--baseline-system", "megatron-lm",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "mfu_gain" in out
        assert "4 results" in out

    def test_report_filter_and_csv(self, cache_dir, tmp_path, capsys):
        run_sweep(cache_dir, tmp_path)
        capsys.readouterr()
        csv_path = tmp_path / "report.csv"
        code = main([
            "report", "--cache-dir", cache_dir,
            "--filter", "system=disttrain", "gpus=32",
            "--csv", str(csv_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 results" in out
        assert len(csv_path.read_text(encoding="utf-8").splitlines()) == 2

    def test_report_empty_cache_errors(self, cache_dir, capsys):
        code = main(["report", "--cache-dir", cache_dir])
        assert code == 1
        assert "no results" in capsys.readouterr().out

    def test_report_ignores_stray_json_in_cache_dir(
        self, cache_dir, tmp_path, capsys
    ):
        # A sweep export written into the cache dir must not break report.
        run_sweep(cache_dir, tmp_path,
                  ["--output", f"{cache_dir}/summary.json"])
        capsys.readouterr()
        code = main(["report", "--cache-dir", cache_dir])
        out = capsys.readouterr().out
        assert code == 0
        assert "4 results" in out

    def test_report_baseline_with_mixed_seeds(
        self, cache_dir, tmp_path, capsys
    ):
        # Runs differing only in seed pair with their own baselines.
        for seed in ("0", "1"):
            run_sweep(cache_dir, tmp_path, ["--seed", seed])
        capsys.readouterr()
        code = main([
            "report", "--cache-dir", cache_dir,
            "--baseline-system", "megatron-lm",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "mfu_gain" in out
        assert "8 results" in out
