"""CLI smoke tests for ``repro sweep`` and ``repro report``."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


def run_sweep(cache_dir, tmp_path, extra=()):
    return main([
        "sweep",
        "--models", "mllm-9b",
        "--systems", "disttrain", "megatron-lm",
        "--gpus", "32", "48",
        "--gbs", "8",
        "--cache-dir", cache_dir,
        "--jobs", "1",
        "--quiet",
        *extra,
    ])


class TestSweep:
    def test_sweep_runs_grid(self, cache_dir, tmp_path, capsys):
        code = run_sweep(cache_dir, tmp_path)
        out = capsys.readouterr().out
        assert code == 0
        assert "4 trials (4 executed, 0 cached, 0 failed)" in out
        assert "disttrain" in out and "megatron-lm" in out

    def test_rerun_hits_cache(self, cache_dir, tmp_path, capsys):
        run_sweep(cache_dir, tmp_path)
        capsys.readouterr()
        code = run_sweep(cache_dir, tmp_path)
        out = capsys.readouterr().out
        assert code == 0
        assert "(0 executed, 4 cached, 0 failed)" in out

    def test_output_json(self, cache_dir, tmp_path, capsys):
        results = tmp_path / "results.json"
        code = run_sweep(cache_dir, tmp_path, ["--output", str(results)])
        assert code == 0
        payload = json.loads(results.read_text(encoding="utf-8"))
        assert len(payload["records"]) == 4
        statuses = {record["status"] for record in payload["records"]}
        assert statuses == {"ok"}

    def test_derive_seeds_gives_distinct_seeds(
        self, cache_dir, tmp_path, capsys
    ):
        results = tmp_path / "seeded.json"
        code = main([
            "sweep", "--models", "mllm-9b", "--systems", "disttrain",
            "--gpus", "32", "48", "--gbs", "8", "--derive-seeds",
            "--cache-dir", cache_dir, "--jobs", "1", "--quiet",
            "--output", str(results),
        ])
        assert code == 0
        payload = json.loads(results.read_text(encoding="utf-8"))
        seeds = [record["params"]["seed"] for record in payload["records"]]
        assert len(set(seeds)) == 2

    def test_all_failed_exits_nonzero(self, cache_dir, tmp_path, capsys):
        # 9B monolithic needs >=24 GPUs: megatron-only at 16 always fails.
        code = main([
            "sweep", "--models", "mllm-9b", "--systems", "megatron-lm",
            "--gpus", "16", "--gbs", "8",
            "--cache-dir", cache_dir, "--jobs", "1", "--quiet",
        ])
        assert code == 1

    def test_all_executed_failed_exits_nonzero_despite_cache_hits(
        self, cache_dir, tmp_path, capsys
    ):
        # Run 1 caches the feasible half of the grid.
        code = main([
            "sweep", "--models", "mllm-9b", "--systems", "disttrain",
            "--gpus", "16", "--gbs", "8",
            "--cache-dir", cache_dir, "--jobs", "1", "--quiet",
        ])
        assert code == 0
        # Run 2 executes only the infeasible half: every *executed*
        # trial fails, and cache hits must not hide that from CI.
        code = main([
            "sweep", "--models", "mllm-9b",
            "--systems", "disttrain", "megatron-lm",
            "--gpus", "16", "--gbs", "8",
            "--cache-dir", cache_dir, "--jobs", "1", "--quiet",
        ])
        assert code == 1

    def test_fail_on_error_makes_partial_failure_fatal(
        self, cache_dir, tmp_path, capsys
    ):
        args = [
            "sweep", "--models", "mllm-9b",
            "--systems", "disttrain", "megatron-lm",
            "--gpus", "16", "--gbs", "8",
            "--cache-dir", cache_dir, "--jobs", "1", "--quiet",
        ]
        # Partial grids are normal by default (disttrain succeeds)...
        assert main(args) == 0
        # ...but --fail-on-error makes any failure fatal.
        assert main([*args, "--no-cache", "--fail-on-error"]) == 1


class TestRobustness:
    def test_interrupted_sweep_resumes_from_journal(
        self, cache_dir, tmp_path, capsys, monkeypatch
    ):
        from repro.experiments import chaos

        base = [
            "sweep", "--models", "mllm-9b",
            "--systems", "disttrain", "megatron-lm",
            "--gpus", "32", "48", "--gbs", "8",
            "--cache-dir", cache_dir, "--no-cache",
            "--jobs", "1", "--quiet",
        ]
        # A SIGINT-style interrupt lands mid-campaign on trial 1.
        monkeypatch.setenv(chaos.ENV_VAR, chaos.rules_to_json([
            chaos.ChaosRule("interrupt", match={"index": 1}, times=1),
        ]))
        code = main(base)
        err = capsys.readouterr().err
        assert code == 130
        assert "--resume" in err

        # With the fault gone, --resume replays the journaled trial and
        # finishes the rest instead of starting over.
        monkeypatch.delenv(chaos.ENV_VAR)
        code = main([*base, "--resume"])
        out = capsys.readouterr().out
        assert code == 0
        assert "(3 executed, 0 cached, 1 resumed, 0 failed)" in out

    def test_trial_timeout_records_timed_out_trial(
        self, cache_dir, tmp_path, capsys, monkeypatch
    ):
        from repro.experiments import chaos

        monkeypatch.setenv(chaos.ENV_VAR, chaos.rules_to_json([
            chaos.ChaosRule(
                "hang", match={"index": 0}, times=-1, seconds=30.0
            ),
        ]))
        results = tmp_path / "timeout.json"
        code = main([
            "sweep", "--models", "mllm-9b",
            "--systems", "disttrain", "megatron-lm",
            "--gpus", "32", "48", "--gbs", "8",
            "--cache-dir", cache_dir, "--no-cache",
            "--jobs", "2", "--trial-timeout", "0.75", "--retries", "0",
            "--quiet", "--output", str(results),
        ])
        out = capsys.readouterr().out
        assert code == 0  # other trials succeeded; not fatal by default
        assert "1 failed" in out
        payload = json.loads(results.read_text(encoding="utf-8"))
        statuses = sorted(r["status"] for r in payload["records"])
        assert statuses == ["ok", "ok", "ok", "timed-out"]


class TestReport:
    def test_report_from_cache(self, cache_dir, tmp_path, capsys):
        run_sweep(cache_dir, tmp_path)
        capsys.readouterr()
        code = main([
            "report", "--cache-dir", cache_dir,
            "--baseline-system", "megatron-lm",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "mfu_gain" in out
        assert "4 results" in out

    def test_report_filter_and_csv(self, cache_dir, tmp_path, capsys):
        run_sweep(cache_dir, tmp_path)
        capsys.readouterr()
        csv_path = tmp_path / "report.csv"
        code = main([
            "report", "--cache-dir", cache_dir,
            "--filter", "system=disttrain", "gpus=32",
            "--csv", str(csv_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 results" in out
        assert len(csv_path.read_text(encoding="utf-8").splitlines()) == 2

    def test_report_empty_cache_errors(self, cache_dir, capsys):
        code = main(["report", "--cache-dir", cache_dir])
        assert code == 1
        assert "no results" in capsys.readouterr().out

    def test_report_ignores_stray_json_in_cache_dir(
        self, cache_dir, tmp_path, capsys
    ):
        # A sweep export written into the cache dir must not break report.
        run_sweep(cache_dir, tmp_path,
                  ["--output", f"{cache_dir}/summary.json"])
        capsys.readouterr()
        code = main(["report", "--cache-dir", cache_dir])
        out = capsys.readouterr().out
        assert code == 0
        assert "4 results" in out

    def test_report_failures_lists_errors_and_tracebacks(
        self, cache_dir, tmp_path, capsys
    ):
        # Failures never reach the cache, so read the sweep export.
        results = tmp_path / "mixed.json"
        main([
            "sweep", "--models", "mllm-9b",
            "--systems", "disttrain", "megatron-lm",
            "--gpus", "16", "--gbs", "8",
            "--cache-dir", cache_dir, "--jobs", "1", "--quiet",
            "--output", str(results),
        ])
        capsys.readouterr()
        code = main([
            "report", "--input", str(results), "--failures",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "1 failed trials" in out
        assert "error:" in out
        assert "Traceback" in out

    def test_report_failures_empty_when_all_ok(
        self, cache_dir, tmp_path, capsys
    ):
        run_sweep(cache_dir, tmp_path)
        capsys.readouterr()
        code = main(["report", "--cache-dir", cache_dir, "--failures"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no failed trials" in out

    def test_report_baseline_with_mixed_seeds(
        self, cache_dir, tmp_path, capsys
    ):
        # Runs differing only in seed pair with their own baselines.
        for seed in ("0", "1"):
            run_sweep(cache_dir, tmp_path, ["--seed", seed])
        capsys.readouterr()
        code = main([
            "report", "--cache-dir", cache_dir,
            "--baseline-system", "megatron-lm",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "mfu_gain" in out
        assert "8 results" in out
