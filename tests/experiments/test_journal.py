"""Durable campaign journal: append, replay, and crash tolerance."""

import json

from repro.experiments.journal import (
    JOURNAL_VERSION,
    CampaignJournal,
    campaign_key,
)

KEYS = ["ab12" * 5, "cd34" * 5, "ef56" * 5]


def record(status="ok", mfu=0.5):
    return {
        "params": {"model": "mllm-9b", "gpus": 32, "gbs": 8},
        "config_hash": KEYS[0],
        "status": status,
        "metrics": {"mfu": mfu},
        "error": "",
        "traceback": "",
        "elapsed_seconds": 0.1,
    }


class TestCampaignKey:
    def test_order_independent(self):
        assert campaign_key(KEYS) == campaign_key(reversed(KEYS))

    def test_grid_changes_change_the_key(self):
        assert campaign_key(KEYS) != campaign_key(KEYS[:2])


class TestCampaignJournal:
    def test_start_append_load(self, tmp_path):
        journal = CampaignJournal.for_campaign(tmp_path, campaign_key(KEYS))
        journal.start("demo", total=3)
        journal.append(KEYS[0], record())
        journal.append(KEYS[1], record(status="failed"))
        loaded = journal.load()
        assert set(loaded) == {KEYS[0], KEYS[1]}
        assert loaded[KEYS[1]]["status"] == "failed"
        meta = journal.meta()
        assert meta["campaign"] == "demo"
        assert meta["total_trials"] == 3
        assert meta["journal_version"] == JOURNAL_VERSION

    def test_for_campaign_names_by_key(self, tmp_path):
        key = campaign_key(KEYS)
        journal = CampaignJournal.for_campaign(tmp_path, key)
        assert journal.path.name == f"journal-{key}.jsonl"
        # .jsonl keeps it invisible to ResultCache's *.json globbing.
        assert journal.path.suffix == ".jsonl"

    def test_last_write_wins(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.start("demo", total=1)
        journal.append(KEYS[0], record(mfu=0.1))
        journal.append(KEYS[0], record(mfu=0.9))
        assert journal.load()[KEYS[0]]["metrics"]["mfu"] == 0.9

    def test_torn_tail_is_skipped(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.start("demo", total=2)
        journal.append(KEYS[0], record())
        with journal.path.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "cd34cd34cd34cd34cd34", "rec')  # crash
        loaded = journal.load()
        assert set(loaded) == {KEYS[0]}
        assert journal.meta() is not None

    def test_unknown_status_is_skipped(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.start("demo", total=1)
        journal.append(KEYS[0], record(status="running"))
        assert journal.load() == {}

    def test_start_truncates_previous_run(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.start("demo", total=1)
        journal.append(KEYS[0], record())
        journal.start("demo", total=1)
        assert journal.load() == {}

    def test_missing_file(self, tmp_path):
        journal = CampaignJournal(tmp_path / "absent.jsonl")
        assert not journal.exists()
        assert journal.load() == {}
        assert journal.meta() is None
        assert journal.remove() is False

    def test_foreign_version_reads_as_absent_meta(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            json.dumps({"journal_version": JOURNAL_VERSION + 1}) + "\n",
            encoding="utf-8",
        )
        assert CampaignJournal(path).meta() is None
