"""Chaos-harness rule matching, serialization, and injection hooks.

Process-lethal actions (``kill``, ``exit``, ``stall``) are exercised
end-to-end against real workers in ``test_supervisor.py``; here we only
fire the in-process-safe ones.
"""

import pytest

from repro.experiments import chaos
from repro.experiments.runner import execute_trial

PARAMS = {"model": "mllm-9b", "gpus": 32, "gbs": 8, "system": "disttrain"}


@pytest.fixture(autouse=True)
def clean_chaos(monkeypatch):
    monkeypatch.delenv(chaos.ENV_VAR, raising=False)
    yield
    chaos.uninstall()


class TestChaosRule:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            chaos.ChaosRule("explode")

    def test_matches_param_subset(self):
        rule = chaos.ChaosRule("fail", match={"gpus": 32})
        assert rule.matches(0, PARAMS, attempt=0)
        assert not rule.matches(0, {**PARAMS, "gpus": 48}, attempt=0)

    def test_matches_index(self):
        rule = chaos.ChaosRule("fail", match={"index": 2})
        assert rule.matches(2, PARAMS, attempt=0)
        assert not rule.matches(3, PARAMS, attempt=0)

    def test_times_limits_attempts(self):
        rule = chaos.ChaosRule("fail", times=2)
        assert rule.matches(0, PARAMS, attempt=0)
        assert rule.matches(0, PARAMS, attempt=1)
        assert not rule.matches(0, PARAMS, attempt=2)

    def test_negative_times_always_fires(self):
        rule = chaos.ChaosRule("fail", times=-1)
        assert rule.matches(0, PARAMS, attempt=99)

    def test_json_round_trip(self):
        rules = (
            chaos.ChaosRule("kill", match={"index": 0}, times=1),
            chaos.ChaosRule("hang", seconds=5.0, times=-1),
        )
        text = chaos.rules_to_json(rules)
        assert chaos.rules_from_json(text) == rules

    def test_rules_from_json_rejects_non_list(self):
        with pytest.raises(ValueError):
            chaos.rules_from_json('{"action": "fail"}')


class TestInjection:
    def test_noop_without_rules(self):
        chaos.maybe_inject(0, PARAMS, attempt=0)  # must not raise

    def test_installed_fail_rule_raises(self):
        chaos.install([chaos.ChaosRule("fail")])
        with pytest.raises(chaos.ChaosError):
            chaos.maybe_inject(0, PARAMS, attempt=0)

    def test_uninstall_deactivates(self):
        chaos.install([chaos.ChaosRule("fail")])
        chaos.uninstall()
        chaos.maybe_inject(0, PARAMS, attempt=0)

    def test_env_rules_apply(self, monkeypatch):
        monkeypatch.setenv(
            chaos.ENV_VAR,
            chaos.rules_to_json([chaos.ChaosRule("fail")]),
        )
        with pytest.raises(chaos.ChaosError):
            chaos.maybe_inject(0, PARAMS, attempt=0)
        assert len(chaos.active_rules()) == 1

    def test_installed_rules_win_over_env(self, monkeypatch):
        monkeypatch.setenv(
            chaos.ENV_VAR,
            chaos.rules_to_json([chaos.ChaosRule("fail")]),
        )
        chaos.install([])
        chaos.maybe_inject(0, PARAMS, attempt=0)  # env masked: no raise

    def test_interrupt_action_raises_keyboard_interrupt(self):
        chaos.install([chaos.ChaosRule("interrupt")])
        with pytest.raises(KeyboardInterrupt):
            chaos.maybe_inject(0, PARAMS, attempt=0)

    def test_delay_runs_trial_normally(self):
        chaos.install([chaos.ChaosRule("delay", seconds=0.01)])
        _, record = execute_trial((0, dict(PARAMS), "ab12" * 5))
        assert record["status"] == "ok"

    def test_fail_records_trial_failure(self):
        # The canonical integration point: a chaos failure surfaces as
        # a deterministic failed record, never an exception.
        chaos.install([chaos.ChaosRule("fail")])
        _, record = execute_trial((0, dict(PARAMS), "ab12" * 5))
        assert record["status"] == "failed"
        assert "ChaosError" in record["error"]
        assert "ChaosError" in record["traceback"]
