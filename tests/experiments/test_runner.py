"""Campaign execution: caching, failure isolation, determinism.

Runner tests use ``processes=1`` (in-process serial execution) so they
stay fast and deterministic; the parallel pool path is exercised by the
CLI smoke test and the figure benchmarks.
"""

import pytest

from repro.experiments import (
    Axis,
    CampaignRunner,
    ResultCache,
    SweepSpec,
)
from repro.experiments.runner import derive_trial_seed, execute_trial

#: A tiny grid every system can run: 2 trials, well under a second each.
TINY = SweepSpec(
    name="tiny",
    axes=[Axis("system", ["disttrain", "megatron-lm"])],
    base={"model": "mllm-9b", "gpus": 32, "gbs": 8},
)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestCampaignRunner:
    def test_executes_and_records_metrics(self, cache):
        campaign = CampaignRunner(TINY, cache=cache, processes=1).run()
        assert campaign.executed == 2
        assert campaign.cached == 0
        assert campaign.failed == 0
        for record in campaign.records:
            assert record.ok
            assert 0.0 < record.metrics["mfu"] < 1.0
            assert record.metrics["throughput_tokens_per_s"] > 0
            assert record.config_hash

    def test_second_run_is_pure_cache_hits(self, cache):
        first = CampaignRunner(TINY, cache=cache, processes=1).run()
        assert first.executed == 2
        second = CampaignRunner(TINY, cache=cache, processes=1).run()
        # The acceptance criterion: zero re-simulations on a re-run.
        assert second.executed == 0
        assert second.cached == 2
        assert [r.metrics for r in second.records] == [
            r.metrics for r in first.records
        ]
        assert all(r.cached for r in second.records)

    def test_changed_config_re_executes_only_new_trials(self, cache):
        CampaignRunner(TINY, cache=cache, processes=1).run()
        grown = SweepSpec(
            name="tiny+",
            axes=[Axis("system", ["disttrain", "megatron-lm"]),
                  Axis("seed", [0, 1])],
            base={"model": "mllm-9b", "gpus": 32, "gbs": 8},
        )
        campaign = CampaignRunner(grown, cache=cache, processes=1).run()
        # seed=0 trials match the cached configs; seed=1 are new.
        assert campaign.cached == 2
        assert campaign.executed == 2

    def test_without_cache_always_executes(self):
        campaign = CampaignRunner(TINY, cache=None, processes=1).run()
        assert campaign.executed == 2
        again = CampaignRunner(TINY, cache=None, processes=1).run()
        assert again.executed == 2

    def test_failed_trial_is_isolated(self, cache):
        spec = SweepSpec(
            name="mixed",
            axes=[Axis("frozen", ["full", "not-a-preset"])],
            base={"model": "mllm-9b", "gpus": 32, "gbs": 8},
        )
        campaign = CampaignRunner(spec, cache=cache, processes=1).run()
        assert len(campaign.records) == 2
        assert campaign.failed == 1
        (failure,) = campaign.failures
        assert "not-a-preset" in failure.error
        (success,) = campaign.ok_records
        assert success.metrics["mfu"] > 0

    def test_failures_are_not_cached(self, cache):
        spec = SweepSpec(
            name="failing",
            base={"model": "mllm-9b", "gpus": 32, "gbs": 8,
                  "frozen": "not-a-preset"},
        )
        CampaignRunner(spec, cache=cache, processes=1).run()
        assert len(cache) == 0
        again = CampaignRunner(spec, cache=cache, processes=1).run()
        assert again.failed == 1  # retried, not served from cache

    def test_progress_callback_sees_every_trial(self, cache):
        seen = []
        CampaignRunner(
            TINY, cache=cache, processes=1,
            progress=lambda done, total, record: seen.append(
                (done, total, record.status)
            ),
        ).run()
        assert [s[:2] for s in seen] == [(1, 2), (2, 2)]
        assert all(status == "ok" for _, _, status in seen)

    def test_derive_seeds_distinct_and_stable(self, cache):
        spec = SweepSpec(
            name="seeded",
            axes=[Axis("gpus", [16, 32])],
            base={"model": "mllm-9b", "gbs": 8},
        )
        campaign = CampaignRunner(
            spec, cache=cache, processes=1, derive_seeds=True
        ).run()
        seeds = [record.params["seed"] for record in campaign.records]
        assert len(set(seeds)) == 2
        again = CampaignRunner(
            spec, cache=cache, processes=1, derive_seeds=True
        ).run()
        assert [r.params["seed"] for r in again.records] == seeds
        assert again.executed == 0  # same seeds -> same hashes -> cached

    def test_explicit_seed_wins_over_derivation(self, cache):
        spec = SweepSpec(
            name="explicit",
            base={"model": "mllm-9b", "gpus": 16, "gbs": 8, "seed": 5},
        )
        campaign = CampaignRunner(
            spec, cache=cache, processes=1, derive_seeds=True
        ).run()
        assert campaign.records[0].params["seed"] == 5


class TestWorker:
    def test_execute_trial_never_raises(self):
        index, record = execute_trial(
            (3, {"model": "no-such-model", "gpus": 8, "gbs": 8}, "")
        )
        assert index == 3
        assert record["status"] == "failed"
        assert "no-such-model" in record["error"]

    def test_derive_trial_seed_is_pure(self):
        params = {"model": "mllm-9b", "gpus": 16, "gbs": 8}
        assert derive_trial_seed(params) == derive_trial_seed(dict(params))
        assert derive_trial_seed(params) != derive_trial_seed(
            {**params, "gpus": 32}
        )


class TestAcceptance:
    def test_twelve_trial_grid_parallel_then_pure_cache(self, cache):
        """2 models x 2 systems x 3 cluster sizes: the first run executes
        all 12 trials in parallel; an immediate re-run is pure cache hits
        with zero re-simulations."""
        spec = SweepSpec.grid(
            models=["mllm-9b", "mllm-15b"],
            systems=["disttrain", "megatron-lm"],
            gpus=[32, 48, 64],
            gbs=8,
            name="acceptance",
        )
        assert spec.num_trials == 12

        first = CampaignRunner(spec, cache=cache).run()  # pooled workers
        assert first.executed == 12
        assert first.failed == 0

        second = CampaignRunner(spec, cache=cache).run()
        assert second.executed == 0
        assert second.cached == 12
        assert second.failed == 0


class TestParallelPath:
    def test_pool_execution_matches_serial(self, tmp_path):
        serial = CampaignRunner(TINY, cache=None, processes=1).run()
        parallel = CampaignRunner(TINY, cache=None, processes=2).run()
        assert parallel.executed == 2
        assert [r.params for r in parallel.records] == [
            r.params for r in serial.records
        ]

        def deterministic(record):
            # solve_seconds is wall-clock time, not a simulated quantity.
            return {k: v for k, v in record.metrics.items()
                    if k != "solve_seconds"}

        assert [deterministic(r) for r in parallel.records] == [
            deterministic(r) for r in serial.records
        ]


class _FakeContext:
    """A multiprocessing context whose Pool fails in a chosen way."""

    def __init__(self, pool_factory):
        self._pool_factory = pool_factory

    def Pool(self, processes):
        return self._pool_factory()


class _MidStreamPool:
    """Delivers the first result, then dies like broken pool machinery."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def imap_unordered(self, fn, payloads, chunksize=1):
        payloads = list(payloads)
        yield fn(payloads[0])
        raise RuntimeError("pool machinery failed mid-stream")


class TestLegacyPoolFallback:
    """The ``supervised=False`` escape hatch keeps its old degradation:
    any pool-machinery failure finishes the remaining run serially."""

    def _broken(self):
        raise OSError("cannot spawn pool workers")

    def test_pool_startup_failure_falls_back_to_serial(self, monkeypatch):
        from repro.experiments import runner as runner_module

        monkeypatch.setattr(
            runner_module, "_pool_context",
            lambda: _FakeContext(self._broken),
        )
        campaign = CampaignRunner(
            TINY, cache=None, processes=2, supervised=False
        ).run()
        assert campaign.executed == 2
        assert campaign.failed == 0
        assert not campaign.interrupted

    def test_mid_stream_pool_failure_completes_without_duplicates(
        self, monkeypatch
    ):
        from repro.experiments import runner as runner_module

        monkeypatch.setattr(
            runner_module, "_pool_context",
            lambda: _FakeContext(_MidStreamPool),
        )
        spec = SweepSpec(
            name="fallback",
            axes=[Axis("system", ["disttrain", "megatron-lm"]),
                  Axis("gpus", [32, 48])],
            base={"model": "mllm-9b", "gbs": 8},
        )
        campaign = CampaignRunner(
            spec, cache=None, processes=2, supervised=False
        ).run()
        # The trial delivered before the failure is not re-executed, and
        # every remaining trial completes exactly once.
        assert campaign.executed == 4
        assert len(campaign.records) == 4
        assert campaign.failed == 0
        hashes = [r.config_hash for r in campaign.records]
        assert len(set(hashes)) == 4


class TestTrialRecordTraceback:
    def test_failed_trial_carries_trimmed_traceback(self, cache):
        spec = SweepSpec(
            name="failing",
            base={"model": "mllm-9b", "gpus": 32, "gbs": 8,
                  "frozen": "not-a-preset"},
        )
        campaign = CampaignRunner(spec, cache=cache, processes=1).run()
        (failure,) = campaign.failures
        assert "Traceback" in failure.traceback
        assert failure.traceback.splitlines()[-1] in failure.error or (
            failure.error in failure.traceback
        )
        assert failure.to_dict()["traceback"] == failure.traceback

    def test_ok_trial_has_empty_traceback(self, cache):
        campaign = CampaignRunner(TINY, cache=cache, processes=1).run()
        assert all(r.traceback == "" for r in campaign.records)

    def test_trim_keeps_the_raising_frame(self):
        from repro.experiments.runner import trim_traceback

        def deep(n):
            if n == 0:
                raise ValueError("bottom of the stack")
            deep(n - 1)

        try:
            deep(60)
        except ValueError as exc:
            text = trim_traceback(exc, limit=10)
        lines = text.splitlines()
        assert len(lines) == 11  # 10 kept + the trim marker
        assert "trimmed" in lines[0]
        assert "bottom of the stack" in lines[-1]
