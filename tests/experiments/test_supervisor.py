"""Supervised campaign execution under injected faults.

These tests run the *production* dispatch/collect machinery against real
forked workers and use the chaos harness
(:mod:`repro.experiments.chaos`) to kill, hang, and stall them
mid-trial. They are the acceptance battery for the supervision layer:
transients retried, poison quarantined, timeouts enforced, interrupts
drained, and interrupted campaigns resumed to the same record set.
"""

import os
import signal

import pytest

from repro.experiments import (
    Axis,
    CampaignRunner,
    RetryPolicy,
    SupervisedExecutor,
    SweepSpec,
)
from repro.experiments import chaos

#: Fast retry policy for tests: same semantics, no multi-second backoff.
FAST_RETRY = RetryPolicy(
    max_attempts=3, backoff_seconds=0.01, backoff_cap_seconds=0.05,
    poison_after=2,
)

TINY = SweepSpec(
    name="supervised-tiny",
    axes=[Axis("system", ["disttrain", "megatron-lm"])],
    base={"model": "mllm-9b", "gpus": 32, "gbs": 8},
)

FOUR = SweepSpec(
    name="supervised-four",
    axes=[
        Axis("system", ["disttrain", "megatron-lm"]),
        Axis("gpus", [32, 48]),
    ],
    base={"model": "mllm-9b", "gbs": 8},
)


@pytest.fixture(autouse=True)
def clean_chaos():
    yield
    chaos.uninstall()


def pending_for(spec):
    from repro.experiments.spec import TrialSpec

    return [
        (index, dict(trial.params), TrialSpec(trial.params).cache_key)
        for index, trial in enumerate(spec.expand())
    ]


def run_supervised(spec, **kwargs):
    kwargs.setdefault("retry", FAST_RETRY)
    executor = SupervisedExecutor(workers=2, **kwargs)
    results = dict(executor.run(pending_for(spec)))
    return executor, results


class TestRetryPolicy:
    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(
            backoff_seconds=0.1, backoff_cap_seconds=0.35
        )
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.35)  # capped

    def test_zero_backoff_disables_waiting(self):
        assert RetryPolicy(backoff_seconds=0.0).backoff(5) == 0.0

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(poison_after=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_seconds=-1.0)


class TestFaultFree:
    def test_matches_serial_execution(self):
        serial = CampaignRunner(TINY, cache=None, processes=1).run()
        _, results = run_supervised(TINY)
        assert len(results) == 2
        for index, record in enumerate(
            r.to_dict() for r in serial.records
        ):
            supervised = dict(results[index])
            for volatile in ("elapsed_seconds",):
                record.pop(volatile)
                supervised.pop(volatile)
            record["metrics"].pop("solve_seconds", None)
            supervised["metrics"].pop("solve_seconds", None)
            assert supervised == record


class TestWorkerDeath:
    def test_killed_worker_retried_on_fresh_worker(self):
        # Trial 0's first attempt SIGKILLs its worker; the retry runs
        # clean on a respawned worker and the campaign loses nothing.
        chaos.install([
            chaos.ChaosRule("kill", match={"index": 0}, times=1)
        ])
        executor, results = run_supervised(TINY)
        assert not executor.interrupted
        assert len(results) == 2
        assert all(r["status"] == "ok" for r in results.values())

    def test_abrupt_exit_is_attributed_and_retried(self):
        chaos.install([
            chaos.ChaosRule("exit", match={"index": 1}, times=1, code=7)
        ])
        _, results = run_supervised(TINY)
        assert all(r["status"] == "ok" for r in results.values())

    def test_poison_trial_is_quarantined(self):
        # Trial 0 kills every worker it touches: after poison_after=2
        # crashes it must be quarantined, and the other trials survive.
        chaos.install([
            chaos.ChaosRule("kill", match={"index": 0}, times=-1)
        ])
        _, results = run_supervised(FOUR)
        assert len(results) == 4
        assert results[0]["status"] == "poisoned"
        assert "poison" in results[0]["error"]
        assert all(
            results[i]["status"] == "ok" for i in (1, 2, 3)
        )

    def test_worker_death_exhausting_attempts_is_failed(self):
        chaos.install([
            chaos.ChaosRule("kill", match={"index": 0}, times=-1)
        ])
        retry = RetryPolicy(
            max_attempts=2, backoff_seconds=0.01, poison_after=5
        )
        _, results = run_supervised(TINY, retry=retry)
        assert results[0]["status"] == "failed"
        assert "worker died" in results[0]["error"]


class TestTimeouts:
    def test_hung_trial_times_out_and_is_recorded(self):
        chaos.install([
            chaos.ChaosRule(
                "hang", match={"index": 0}, times=-1, seconds=30.0
            )
        ])
        retry = RetryPolicy(
            max_attempts=2, backoff_seconds=0.01, poison_after=5
        )
        _, results = run_supervised(TINY, timeout=0.75, retry=retry)
        assert results[0]["status"] == "timed-out"
        assert "timeout" in results[0]["error"]
        assert results[1]["status"] == "ok"

    def test_transient_hang_is_retried_to_success(self):
        chaos.install([
            chaos.ChaosRule(
                "hang", match={"index": 0}, times=1, seconds=30.0
            )
        ])
        _, results = run_supervised(TINY, timeout=0.75)
        assert all(r["status"] == "ok" for r in results.values())


class TestHeartbeat:
    def test_stalled_worker_is_killed_and_trial_retried(self):
        # SIGSTOP freezes the worker without killing it: no per-trial
        # timeout is set, so only heartbeat staleness can catch it.
        chaos.install([
            chaos.ChaosRule("stall", match={"index": 0}, times=1)
        ])
        _, results = run_supervised(
            TINY, heartbeat_timeout=0.8, heartbeat_interval=0.05
        )
        assert all(r["status"] == "ok" for r in results.values())


class TestInterrupt:
    def test_sigint_drains_and_resume_completes(self, tmp_path):
        jdir = tmp_path / "journal"
        fired = []

        def interrupt_once(done, total, record):
            if not fired:
                fired.append(True)
                os.kill(os.getpid(), signal.SIGINT)

        first = CampaignRunner(
            FOUR, cache=None, processes=2, retry=FAST_RETRY,
            journal_dir=jdir, progress=interrupt_once,
        ).run()
        assert first.interrupted
        # Dispatch stopped after the signal: with 2 workers at most the
        # 2 in-flight trials drained on top of the one already done.
        assert len(first.records) < 4

        resumed = CampaignRunner(
            FOUR, cache=None, processes=2, retry=FAST_RETRY,
            journal_dir=jdir, resume=True,
        ).run()
        assert not resumed.interrupted
        assert len(resumed.records) == 4
        assert resumed.resumed == len(first.records)
        assert resumed.resumed + resumed.executed == 4

        # Acceptance: the interrupted+resumed campaign converges on the
        # same records an uninterrupted run produces.
        reference = CampaignRunner(FOUR, cache=None, processes=1).run()

        def stable(record):
            data = record.to_dict()
            data.pop("elapsed_seconds")
            data["metrics"].pop("solve_seconds", None)
            return data

        assert [stable(r) for r in resumed.records] == [
            stable(r) for r in reference.records
        ]

    def test_fresh_run_truncates_stale_journal(self, tmp_path):
        jdir = tmp_path / "journal"
        kwargs = dict(cache=None, processes=1, journal_dir=jdir)
        CampaignRunner(FOUR, **kwargs).run()
        # Without --resume the journal restarts; nothing is replayed.
        again = CampaignRunner(FOUR, **kwargs).run()
        assert again.resumed == 0
        assert again.executed == 4


class TestRunnerIntegration:
    def test_supervised_faults_do_not_reach_cache(self, tmp_path):
        # Poisoned/timed-out records are journaled but never cached, so
        # a later healthy run re-executes them.
        from repro.experiments import ResultCache

        chaos.install([
            chaos.ChaosRule("kill", match={"index": 0}, times=-1)
        ])
        cache = ResultCache(tmp_path / "cache")
        first = CampaignRunner(
            TINY, cache=cache, processes=2, retry=FAST_RETRY,
        ).run()
        assert first.records[0].status == "poisoned"
        assert first.records[1].ok
        assert len(cache) == 1  # only the ok record

        chaos.uninstall()
        second = CampaignRunner(
            TINY, cache=cache, processes=2, retry=FAST_RETRY,
        ).run()
        assert all(r.ok for r in second.records)
        assert second.cached == 1
        assert second.executed == 1
