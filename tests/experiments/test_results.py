"""ResultFrame filtering, grouping, ratios, and export."""

import pytest

from repro.experiments import ResultCache, ResultFrame, TrialRecord


def record(model, system, gpus, mfu, status="ok", **metrics):
    return TrialRecord(
        params={"model": model, "system": system, "gpus": gpus, "gbs": 8},
        config_hash=f"{abs(hash((model, system, gpus))):x}"[:8],
        status=status,
        metrics={"mfu": mfu, **metrics} if status == "ok" else {},
        error="" if status == "ok" else "boom",
    )


@pytest.fixture
def frame():
    return ResultFrame([
        record("mllm-9b", "disttrain", 16, 0.50, throughput_tokens_per_s=200.0),
        record("mllm-9b", "megatron-lm", 16, 0.25, throughput_tokens_per_s=100.0),
        record("mllm-15b", "disttrain", 16, 0.40, throughput_tokens_per_s=150.0),
        record("mllm-15b", "megatron-lm", 16, 0.20, throughput_tokens_per_s=50.0),
        record("mllm-15b", "megatron-lm", 32, 0.0, status="failed"),
    ])


class TestSelection:
    def test_len_and_ok(self, frame):
        assert len(frame) == 5
        assert len(frame.ok()) == 4

    def test_filter_by_columns(self, frame):
        sub = frame.filter(model="mllm-9b", system="disttrain")
        assert len(sub) == 1
        assert sub.value("mfu") == 0.50

    def test_filter_predicate(self, frame):
        fast = frame.ok().filter(lambda row: row["mfu"] > 0.3)
        assert sorted(fast.values("mfu")) == [0.40, 0.50]

    def test_group_by(self, frame):
        groups = frame.ok().group_by("model")
        assert set(groups) == {("mllm-9b",), ("mllm-15b",)}
        assert len(groups[("mllm-9b",)]) == 2

    def test_sort_by(self, frame):
        ordered = frame.ok().sort_by("mfu")
        assert ordered.values("mfu") == [0.20, 0.25, 0.40, 0.50]

    def test_value_requires_single_row(self, frame):
        with pytest.raises(ValueError):
            frame.value("mfu")

    def test_mean(self, frame):
        assert frame.ok().filter(model="mllm-9b").mean("mfu") == pytest.approx(
            0.375
        )


class TestRatio:
    def test_ratio_vs_baseline(self, frame):
        ratios = frame.ok().with_ratio(
            "mfu", baseline={"system": "megatron-lm"}, join=("model",),
            name="gain",
        )
        assert ratios.filter(
            model="mllm-9b", system="disttrain"
        ).value("gain") == pytest.approx(2.0)
        assert ratios.filter(
            model="mllm-15b", system="megatron-lm"
        ).value("gain") == pytest.approx(1.0)

    def test_missing_baseline_gives_none(self, frame):
        only_ours = frame.ok().filter(system="disttrain")
        ratios = only_ours.with_ratio(
            "mfu", baseline={"system": "megatron-lm"}, join=("model",),
        )
        assert ratios.values("mfu_ratio") == [None, None]

    def test_ambiguous_baseline_rejected(self, frame):
        with pytest.raises(ValueError, match="ambiguous"):
            # Two megatron rows for mllm-15b once gpus is not a join key.
            frame.with_ratio(
                "mfu", baseline={"system": "megatron-lm"}, join=("model",),
            )


class TestExport:
    def test_csv_round_trips_columns(self, frame, tmp_path):
        path = tmp_path / "out.csv"
        text = frame.to_csv(path)
        assert path.read_text(encoding="utf-8") == text
        header = text.splitlines()[0].split(",")
        assert "model" in header and "mfu" in header and "status" in header
        assert len(text.splitlines()) == 6  # header + 5 rows

    def test_json_round_trip(self, frame, tmp_path):
        path = tmp_path / "out.json"
        frame.to_json(path)
        loaded = ResultFrame.from_json(path)
        assert len(loaded) == len(frame)
        assert loaded.filter(
            model="mllm-9b", system="disttrain"
        ).value("mfu") == 0.50

    def test_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        rec = record("mllm-9b", "disttrain", 16, 0.5)
        cache.put("ab" * 10, rec.to_dict())
        frame = ResultFrame.from_cache(cache)
        assert len(frame) == 1
        assert frame.value("mfu") == 0.5

    def test_table_formats_floats(self, frame):
        header, rows = frame.ok().table(["model", "mfu"])
        assert header == ["model", "mfu"]
        assert ["mllm-9b", "0.5"] in rows
