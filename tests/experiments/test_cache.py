"""On-disk result cache behavior."""

import json

import pytest

from repro.experiments.cache import CACHE_VERSION, ResultCache

KEY = "ab12" * 5


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestResultCache:
    def test_miss_returns_none(self, cache):
        assert cache.get(KEY) is None
        assert KEY not in cache
        assert len(cache) == 0

    def test_put_then_hit(self, cache):
        record = {"params": {"model": "mllm-9b"}, "status": "ok"}
        cache.put(KEY, record)
        hit = cache.get(KEY)
        assert hit is not None
        assert hit["params"] == {"model": "mllm-9b"}
        assert KEY in cache
        assert cache.keys() == [KEY]

    def test_put_overwrites(self, cache):
        cache.put(KEY, {"status": "ok", "metrics": {"mfu": 0.1}})
        cache.put(KEY, {"status": "ok", "metrics": {"mfu": 0.2}})
        assert cache.get(KEY)["metrics"]["mfu"] == 0.2
        assert len(cache) == 1

    def test_torn_entry_reads_as_miss(self, cache):
        cache.put(KEY, {"status": "ok"})
        cache.path_for(KEY).write_text("{not json", encoding="utf-8")
        assert cache.get(KEY) is None

    def test_non_utf8_entry_reads_as_miss(self, cache):
        cache.path_for(KEY).write_bytes(b"\xff\xfe\x00garbage")
        assert cache.get(KEY) is None
        assert cache.load_all() == []

    def test_version_mismatch_reads_as_miss(self, cache):
        cache.path_for(KEY).write_text(
            json.dumps({"status": "ok", "cache_version": CACHE_VERSION + 1}),
            encoding="utf-8",
        )
        assert cache.get(KEY) is None

    def test_malformed_key_rejected(self, cache):
        with pytest.raises(ValueError):
            cache.get("../../etc/passwd")
        with pytest.raises(ValueError):
            cache.put("UPPER", {})

    def test_stray_non_key_json_ignored(self, cache):
        cache.put(KEY, {"status": "ok"})
        (cache.root / "summary.json").write_text("[]", encoding="utf-8")
        assert cache.keys() == [KEY]
        assert len(cache.load_all()) == 1

    def test_load_all_skips_invalid(self, cache):
        cache.put(KEY, {"status": "ok"})
        other = "cd34" * 5
        cache.path_for(other).write_text("garbage", encoding="utf-8")
        records = cache.load_all()
        assert len(records) == 1
        assert records[0]["status"] == "ok"

    def test_clear_and_discard(self, cache):
        cache.put(KEY, {"status": "ok"})
        assert cache.discard(KEY) is True
        assert cache.discard(KEY) is False
        cache.put(KEY, {"status": "ok"})
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_clear_spares_stray_files(self, cache):
        cache.put(KEY, {"status": "ok"})
        stray = cache.root / "summary.json"
        stray.write_text("[]", encoding="utf-8")
        assert cache.clear() == 1
        assert stray.exists()


class TestIntegrity:
    def corrupt_path(self, cache):
        return cache.root / f"{KEY}.json.corrupt"

    def test_tampered_record_is_quarantined(self, cache):
        cache.put(KEY, {"status": "ok", "metrics": {"mfu": 0.5}})
        path = cache.path_for(KEY)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["metrics"]["mfu"] = 0.99  # bit rot / manual edit
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.get(KEY) is None
        assert not path.exists()
        assert self.corrupt_path(cache).exists()

    def test_torn_entry_is_quarantined(self, cache):
        cache.put(KEY, {"status": "ok"})
        cache.path_for(KEY).write_text("{not json", encoding="utf-8")
        assert cache.get(KEY) is None
        assert self.corrupt_path(cache).exists()

    def test_quarantined_entries_invisible_to_keys(self, cache):
        cache.put(KEY, {"status": "ok"})
        cache.path_for(KEY).write_text("{not json", encoding="utf-8")
        cache.get(KEY)
        assert cache.keys() == []
        assert cache.load_all() == []

    def test_rewrite_after_quarantine(self, cache):
        cache.put(KEY, {"status": "ok", "metrics": {"mfu": 0.1}})
        cache.path_for(KEY).write_text("{not json", encoding="utf-8")
        assert cache.get(KEY) is None
        cache.put(KEY, {"status": "ok", "metrics": {"mfu": 0.2}})
        assert cache.get(KEY)["metrics"]["mfu"] == 0.2
        assert self.corrupt_path(cache).exists()  # evidence preserved

    def test_version_mismatch_is_not_quarantined(self, cache):
        # Old-layout entries are legitimate misses, not corruption.
        cache.path_for(KEY).write_text(
            json.dumps({"status": "ok", "cache_version": CACHE_VERSION + 1}),
            encoding="utf-8",
        )
        assert cache.get(KEY) is None
        assert not self.corrupt_path(cache).exists()

    def test_corruption_counter(self, cache):
        from repro.obs import METRICS, instrument

        cache.put(KEY, {"status": "ok"})
        cache.path_for(KEY).write_text("{not json", encoding="utf-8")
        with instrument.session(metrics=True):
            assert cache.get(KEY) is None
            assert METRICS.counter_value("cache.results.corrupt") == 1
            assert METRICS.counter_value("cache.results.misses") == 1

    def test_checksum_round_trip(self, cache):
        from repro.experiments.cache import record_checksum

        cache.put(KEY, {"status": "ok", "metrics": {"mfu": 0.5}})
        stored = json.loads(
            cache.path_for(KEY).read_text(encoding="utf-8")
        )
        assert stored["checksum"] == record_checksum(stored)
        assert cache.get(KEY) is not None
