"""Sweep expansion and config hashing."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.config import DistTrainConfig
from repro.experiments.spec import (
    Axis,
    SweepSpec,
    TrialSpec,
    ZippedAxes,
    canonical_json,
    config_hash,
)
from repro.pipeline.schedules import ScheduleKind


class TestAxis:
    def test_assignments(self):
        axis = Axis("model", ["mllm-9b", "mllm-15b"])
        assert axis.assignments() == [
            {"model": "mllm-9b"}, {"model": "mllm-15b"}
        ]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Axis("model", [])

    def test_zipped_lockstep(self):
        zipped = ZippedAxes([Axis("gpus", [16, 32]), Axis("gbs", [8, 16])])
        assert zipped.assignments() == [
            {"gpus": 16, "gbs": 8}, {"gpus": 32, "gbs": 16}
        ]

    def test_zipped_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal lengths"):
            ZippedAxes([Axis("gpus", [16, 32]), Axis("gbs", [8])])


class TestSweepSpec:
    def test_grid_expansion(self):
        spec = SweepSpec(
            axes=[
                Axis("model", ["mllm-9b", "mllm-15b"]),
                Axis("system", ["disttrain", "megatron-lm"]),
                Axis("gpus", [16, 32, 64]),
            ],
            base={"gbs": 32},
        )
        trials = spec.expand()
        assert spec.num_trials == len(trials) == 12
        # Every combination appears exactly once.
        combos = {
            (t["model"], t["system"], t["gpus"]) for t in trials
        }
        assert len(combos) == 12
        assert all(t["gbs"] == 32 for t in trials)

    def test_zipped_axis_in_grid(self):
        spec = SweepSpec(
            axes=[
                Axis("model", ["mllm-9b"]),
                ZippedAxes([
                    Axis("gpus", [16, 32]), Axis("gbs", [8, 16]),
                ]),
            ],
        )
        pairs = [(t["gpus"], t["gbs"]) for t in spec.expand()]
        assert pairs == [(16, 8), (32, 16)]  # no cross product

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError, match="more than one axis"):
            SweepSpec(axes=[Axis("gpus", [8]), Axis("gpus", [16])])

    def test_expansion_order_deterministic(self):
        spec = SweepSpec.grid(
            models=["mllm-9b", "mllm-15b"],
            systems=["disttrain"],
            gpus=[16, 32],
            gbs=8,
        )
        assert [t.params for t in spec.expand()] == [
            t.params for t in spec.expand()
        ]

    def test_grid_helper_zips_gbs_per_cluster(self):
        spec = SweepSpec.grid(
            models=["mllm-9b"], systems=["disttrain"],
            gpus=[16, 32], gbs=[8, 16],
        )
        pairs = [(t["gpus"], t["gbs"]) for t in spec.expand()]
        assert pairs == [(16, 8), (32, 16)]


class TestTrialSpec:
    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep parameters"):
            TrialSpec({"model": "mllm-9b", "gpus": 8, "gbs": 8, "nope": 1})

    def test_missing_required_rejected(self):
        with pytest.raises(ValueError, match="required"):
            TrialSpec({"model": "mllm-9b"})

    def test_to_config(self):
        trial = TrialSpec({
            "model": "mllm-9b", "gpus": 16, "gbs": 8,
            "system": "megatron-lm", "frozen": "llm-only",
            "schedule": "gpipe", "seed": 7, "vpp": 2,
        })
        config = trial.to_config()
        assert config.cluster.num_gpus == 16
        assert config.global_batch_size == 8
        assert config.system == "megatron-lm"
        assert config.schedule is ScheduleKind.GPIPE
        assert config.data_seed == 7
        assert config.vpp == 2
        assert not config.frozen.train_encoder
        assert config.frozen.train_llm

    def test_fleet_workers_is_execution_side(self):
        """``fleet_workers`` picks how a fleet trial runs, never what
        it computes: accepted as a param, stripped from the config,
        and invisible to the cache key (sharded results are
        byte-identical, so cached metrics stay valid)."""
        base = {
            "model": "mllm-9b", "gpus": 96, "gbs": 16,
            "fleet_policy": "fifo", "fleet_jobs": 2,
            "fleet_job_gpus": 48, "scenario_iterations": 10,
        }
        plain = TrialSpec(base)
        sharded = TrialSpec({**base, "fleet_workers": 4})
        assert sharded.cache_key == plain.cache_key
        assert sharded.to_fleet().canonical() == (
            plain.to_fleet().canonical()
        )
        sharded.to_config()  # must not leak into the task config


class TestConfigHash:
    def _config(self, **kwargs) -> DistTrainConfig:
        return DistTrainConfig.preset("mllm-9b", 16, 8, **kwargs)

    def test_equal_configs_hash_equal(self):
        assert config_hash(self._config()) == config_hash(self._config())

    def test_any_field_changes_hash(self):
        base = config_hash(self._config())
        assert config_hash(self._config(system="megatron-lm")) != base
        assert config_hash(self._config(data_seed=1)) != base
        assert config_hash(self._config(vpp=2)) != base
        assert config_hash(
            DistTrainConfig.preset("mllm-9b", 16, 16)
        ) != base

    def test_canonical_json_is_sorted_and_compact(self):
        text = canonical_json(self._config())
        assert " " not in text
        assert text.index('"cluster"') < text.index('"system"')

    def test_hash_stable_across_process_restarts(self):
        """The cache key must not depend on interpreter state."""
        here = config_hash(self._config())
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
        # PYTHONHASHSEED differs per process by default — the content
        # hash must not notice.
        env["PYTHONHASHSEED"] = "random"
        script = (
            "from repro.core.config import DistTrainConfig\n"
            "from repro.experiments.spec import config_hash\n"
            "print(config_hash(DistTrainConfig.preset('mllm-9b', 16, 8)))\n"
        )
        fresh = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        ).stdout.strip()
        assert fresh == here

    def test_trial_spec_hash_matches_config_hash(self):
        trial = TrialSpec({"model": "mllm-9b", "gpus": 16, "gbs": 8})
        assert trial.config_hash == config_hash(self._config())
