"""Regenerate the golden flight-recorder trace.

Run after an *intentional* change to the instrumentation points, the
trace schema, or the engine semantics::

    PYTHONPATH=src python -m tests.obs.golden.regen

The fixture pins the complete JSONL byte stream of a canonical
elastic-failure scenario traced on a deterministic integer clock, plus
the counters and gauges of the metrics snapshot. Wall-clock histograms
(e.g. ``orch.solve_seconds``) are deliberately *not* pinned — they
measure real time and can never be bit-stable.

Determinism preconditions: every process-level cache is cleared first,
because a warm plan/profile/kernel cache legitimately changes which
spans and counters a run emits.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.api import PROFILE_CACHE
from repro.core.config import DistTrainConfig
from repro.obs import METRICS, instrument
from repro.orchestration.plancache import PLAN_CACHE
from repro.orchestration.problem import PROFILER_CACHE
from repro.pipeline.kernel import clear_kernel_cache
from repro.scenarios import ScenarioSpec, run_scenario

GOLDEN_DIR = Path(__file__).resolve().parent


class GoldenClock:
    """0.0, 1.0, 2.0, ... — one tick per tracer clock read."""

    def __init__(self) -> None:
        self.now = -1.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


def trace_case():
    """The canonical traced scenario: failures, stragglers, elastic."""
    config = DistTrainConfig.preset("mllm-9b", 48, 16)
    spec = ScenarioSpec(
        num_iterations=120,
        checkpoint_interval=20,
        mtbf_gpu_hours=3.0,
        restart_seconds=60.0,
        checkpoint_load_seconds=30.0,
        straggler_rate=0.03,
        straggler_slowdown=1.8,
        elastic=True,
        repair_seconds=400.0,
        seed=5,
    )
    return config, spec


def reset_process_caches() -> None:
    clear_kernel_cache()
    PLAN_CACHE.clear()
    PROFILE_CACHE.clear()
    PROFILER_CACHE.clear()
    METRICS.reset()


def trace_fixture():
    config, spec = trace_case()
    reset_process_caches()
    with instrument.session(trace=True, clock=GoldenClock()) as tracer:
        run_scenario(config, spec)
        snapshot = METRICS.snapshot()
    return {
        "name": "trace_canonical",
        "jsonl": tracer.to_jsonl(),  # no metrics line: bytes must pin
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
    }


def main() -> None:
    fixture = trace_fixture()
    path = GOLDEN_DIR / "trace_canonical.json"
    path.write_text(json.dumps(fixture, indent=1) + "\n")
    lines = fixture["jsonl"].count("\n")
    print(f"wrote {path} ({lines} trace lines, "
          f"{len(fixture['counters'])} counters)")


if __name__ == "__main__":
    main()
