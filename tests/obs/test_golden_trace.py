"""Golden flight-recorder trace: byte-exact snapshot of a canonical
traced scenario.

Any change to the instrumentation points, span/event names, record
schema, or engine control flow shows up here as a byte diff. Re-bless
intentional changes with::

    PYTHONPATH=src python -m tests.obs.golden.regen
"""

import json

import pytest

from tests.obs.golden.regen import GOLDEN_DIR, trace_fixture

REBLESS = "PYTHONPATH=src python -m tests.obs.golden.regen"


def load_fixture():
    path = GOLDEN_DIR / "trace_canonical.json"
    assert path.exists(), f"missing golden fixture; run: {REBLESS}"
    return json.loads(path.read_text())


@pytest.fixture(scope="module")
def fresh():
    return trace_fixture()


def test_trace_bytes_match_golden(fresh):
    golden = load_fixture()
    assert fresh["jsonl"] == golden["jsonl"], (
        f"trace bytes diverged from golden; if intentional: {REBLESS}"
    )


def test_counters_and_gauges_match_golden(fresh):
    golden = load_fixture()
    assert fresh["counters"] == golden["counters"], (
        f"metric counters diverged from golden; if intentional: {REBLESS}"
    )
    assert fresh["gauges"] == golden["gauges"], (
        f"metric gauges diverged from golden; if intentional: {REBLESS}"
    )


def test_golden_trace_covers_the_instrumented_layers():
    """The fixture itself must stay a meaningful probe: it has to
    exercise kernel, orchestration, cache, and scenario instrumentation
    (a trivial trace would pin bytes while guarding nothing)."""
    golden = load_fixture()
    records = [
        json.loads(line) for line in golden["jsonl"].splitlines()
    ]
    assert records[0]["type"] == "meta"
    assert records[0]["version"] == 1
    names = {r["name"] for r in records[1:]}
    assert {"scenario.run", "orch.plan", "kernel.compile"} <= names
    counters = golden["counters"]
    assert counters["kernel.compiles"] > 0
    assert counters["orch.plans"] >= 1
    assert counters["cache.plan.misses"] >= 1
