"""Byte-identity: instrumentation must never perturb a simulation.

The flight recorder only *observes* — it reads no simulation state and
draws nothing from any RNG stream. These properties pin that contract:
a scenario or fleet run executed inside an enabled tracing+metrics
session produces byte-identical results to the same run with
observability disabled (the process default).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster.cluster import make_cluster
from repro.core.config import DistTrainConfig
from repro.fleet import FleetJobSpec, FleetSpec, run_fleet
from repro.obs import instrument
from repro.scenarios import ScenarioSpec, run_scenario
from tests.scenarios.conftest import FAST_RECOVERY

ENGINE_SETTINGS = dict(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

CONFIG = DistTrainConfig.preset("mllm-9b", 48, 16)


def assert_scenario_identical(first, second):
    assert first.metrics() == second.metrics()
    assert first.iteration_times.tobytes() == second.iteration_times.tobytes()
    assert first.mfu_trajectory.tobytes() == second.mfu_trajectory.tobytes()
    assert first.events.events == second.events.events


@settings(**ENGINE_SETTINGS)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    mtbf=st.one_of(st.none(), st.floats(min_value=3.0, max_value=100.0)),
    elastic=st.booleans(),
)
def test_traced_scenario_is_byte_identical(seed, mtbf, elastic):
    spec = ScenarioSpec(
        num_iterations=60,
        checkpoint_interval=15,
        mtbf_gpu_hours=mtbf,
        straggler_rate=0.05,
        elastic=elastic,
        seed=seed,
        **FAST_RECOVERY,
    )
    untraced = run_scenario(CONFIG, spec)
    with instrument.session(trace=True, metrics=True):
        traced = run_scenario(CONFIG, spec)
    assert_scenario_identical(untraced, traced)
    # and the tracer actually recorded the run — this is a live session,
    # not an accidentally-disabled one
    tracer = instrument.current_tracer()
    assert tracer is None  # session restored the disabled default


@settings(**ENGINE_SETTINGS)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    policy=st.sampled_from(["fair-share", "fifo", "priority"]),
)
def test_traced_fleet_is_byte_identical(seed, policy):
    spec = FleetSpec(
        cluster=make_cluster(96),
        jobs=[
            FleetJobSpec(
                name=f"job{i}",
                config=CONFIG,
                scenario=ScenarioSpec(
                    num_iterations=40,
                    checkpoint_interval=10,
                    mtbf_gpu_hours=30.0,
                    elastic=True,
                    seed=seed + i,
                    **FAST_RECOVERY,
                ),
                arrival_s=5.0 * i,
                priority=i % 2,
            )
            for i in range(3)
        ],
        policy=policy,
    )
    untraced = run_fleet(spec)
    with instrument.session(trace=True, metrics=True):
        traced = run_fleet(spec)
    assert untraced.metrics() == traced.metrics()
    for u, t in zip(untraced.records, traced.records):
        assert u.name == t.name
        assert u.start_s == t.start_s
        assert u.completion_s == t.completion_s
        assert u.result.metrics() == t.result.metrics()
        assert_scenario_identical(u.result, t.result)


def test_traced_run_records_spans_and_metrics():
    """The non-perturbation proof is only meaningful if the session was
    genuinely recording; pin that the instrumented layers actually
    emitted into it."""
    from repro.orchestration.plancache import PLAN_CACHE

    PLAN_CACHE.clear()  # a warm cache would (rightly) skip orch.plan
    spec = ScenarioSpec(
        num_iterations=60,
        checkpoint_interval=10,
        mtbf_gpu_hours=2.0,
        elastic=True,
        seed=2,  # samples two failures on this geometry
        **FAST_RECOVERY,
    )
    with instrument.session(trace=True, metrics=True) as tracer:
        run_scenario(CONFIG, spec)
        from repro.obs import METRICS

        snapshot = METRICS.snapshot()
    names = {r["name"] for r in tracer.records}
    assert "scenario.run" in names
    assert "orch.plan" in names
    assert snapshot["counters"]["orch.plans"] >= 1
    assert snapshot["counters"].get("job.failures", 0) >= 1
