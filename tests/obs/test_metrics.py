"""MetricsRegistry: counters, gauges, histograms, snapshot/reset."""

import json
import threading

from repro.obs.metrics import MetricsRegistry

from tests.obs.conftest import FakeClock


class TestCounters:
    def test_count_accumulates(self):
        registry = MetricsRegistry()
        registry.count("a")
        registry.count("a", 4)
        assert registry.counter_value("a") == 5

    def test_unknown_counter_reads_zero(self):
        assert MetricsRegistry().counter_value("nope") == 0


class TestGauges:
    def test_gauge_keeps_latest(self):
        registry = MetricsRegistry()
        registry.gauge("free", 96)
        registry.gauge("free", 48)
        assert registry.gauge_value("free") == 48

    def test_unset_gauge_is_none(self):
        assert MetricsRegistry().gauge_value("nope") is None


class TestHistograms:
    def test_observe_tracks_streaming_aggregates(self):
        registry = MetricsRegistry()
        for value in (4.0, 1.0, 7.0):
            registry.observe("batch", value)
        h = registry.snapshot()["histograms"]["batch"]
        assert h == {"count": 3, "total": 12.0, "min": 1.0, "max": 7.0}

    def test_timer_observes_elapsed_on_injected_clock(self):
        registry = MetricsRegistry(clock=FakeClock())
        with registry.timer("work"):
            pass
        h = registry.snapshot()["histograms"]["work"]
        assert h["count"] == 1
        assert h["total"] == 1.0  # two clock ticks, one apart


class TestSnapshot:
    def test_keys_sorted_at_every_level(self):
        registry = MetricsRegistry()
        registry.count("z")
        registry.count("a")
        registry.gauge("m", 1.0)
        snap = registry.snapshot()
        assert list(snap) == ["counters", "gauges", "histograms"]
        assert list(snap["counters"]) == ["a", "z"]

    def test_snapshot_is_a_copy(self):
        registry = MetricsRegistry()
        registry.count("a")
        snap = registry.snapshot()
        snap["counters"]["a"] = 999
        assert registry.counter_value("a") == 1

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.count("a")
        registry.gauge("g", 1.0)
        registry.observe("h", 1.0)
        registry.reset()
        snap = registry.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_export_writes_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.count("a", 3)
        path = tmp_path / "metrics.json"
        registry.export(str(path))
        assert json.loads(path.read_text())["counters"]["a"] == 3


def test_thread_safety_exact_counts():
    registry = MetricsRegistry()

    def hammer():
        for _ in range(1000):
            registry.count("n")
            registry.observe("h", 1.0)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert registry.counter_value("n") == 4000
    assert registry.snapshot()["histograms"]["h"]["count"] == 4000
