"""The observability CLI surface: --trace/--metrics, trace summarize,
--log-level."""

import json
import logging

import pytest

from repro.cli import main
from repro.obs.report import load_trace

SCENARIO_ARGS = [
    "scenario", "run", "--model", "mllm-9b", "--gpus", "48",
    "--gbs", "16", "--iterations", "30", "--mtbf", "5",
    "--seed", "3", "--elastic",
]

FLEET_ARGS = [
    "fleet", "run", "--model", "mllm-9b", "--gpus", "96",
    "--gbs", "16", "--jobs", "2", "--job-gpus", "48",
    "--arrival-spacing", "40", "--iterations", "20",
]


class TestTraceFlag:
    def test_scenario_trace_is_loadable(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        code = main(SCENARIO_ARGS + ["--trace", str(path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "trace written to" in captured.err
        trace = load_trace(str(path))
        span_names = {s["name"] for s in trace["spans"]}
        assert "scenario.run" in span_names
        # tracing implies metrics: the snapshot rides in the file
        assert trace["metrics"]["counters"]["kernel.evaluations"] > 0

    def test_fleet_json_stdout_stays_pure(self, tmp_path, capsys):
        path = tmp_path / "fleet.jsonl"
        code = main(FLEET_ARGS + ["--json", "--trace", str(path),
                                  "--metrics"])
        captured = capsys.readouterr()
        assert code == 0
        payload = json.loads(captured.out)  # one document, nothing else
        assert payload["cluster_gpus"] == 96
        assert "trace written to" in captured.err
        trace = load_trace(str(path))
        assert {s["name"] for s in trace["spans"]} >= {"fleet.run"}
        assert {e["name"] for e in trace["events"]} >= {
            "fleet.admit", "fleet.seat", "fleet.complete",
        }

    def test_metrics_digest_goes_to_stderr(self, capsys):
        code = main(SCENARIO_ARGS + ["--metrics"])
        captured = capsys.readouterr()
        assert code == 0
        assert "counters" in captured.err
        assert "counters" not in captured.out

    def test_no_flags_means_no_obs_output(self, capsys):
        code = main(SCENARIO_ARGS)
        captured = capsys.readouterr()
        assert code == 0
        assert "trace written to" not in captured.err
        assert "counters" not in captured.err


class TestTraceSummarize:
    @pytest.fixture
    def trace_path(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(SCENARIO_ARGS + ["--trace", str(path)]) == 0
        capsys.readouterr()
        return str(path)

    def test_renders_report(self, trace_path, capsys):
        code = main(["trace", "summarize", trace_path])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("trace v1:")
        assert "spans (by total wall time)" in out
        assert "scenario.run" in out

    def test_timeline_limit_flag(self, trace_path, capsys):
        code = main([
            "trace", "summarize", trace_path, "--timeline-limit", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0

    def test_missing_file_exits_2(self, capsys):
        code = main(["trace", "summarize", "/nonexistent/x.jsonl"])
        err = capsys.readouterr().err
        assert code == 2
        assert "error" in err

    def test_invalid_trace_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "event", "name": "e", "time": 0.0}\n')
        code = main(["trace", "summarize", str(path)])
        err = capsys.readouterr().err
        assert code == 2
        assert "no meta record" in err

    def test_plot_without_matplotlib_reports_cleanly(
        self, trace_path, tmp_path, capsys
    ):
        try:
            import matplotlib  # noqa: F401

            pytest.skip("matplotlib installed; gate path not reachable")
        except ImportError:
            pass
        code = main([
            "trace", "summarize", trace_path,
            "--plot", str(tmp_path / "out.png"),
        ])
        err = capsys.readouterr().err
        assert code == 2
        assert "matplotlib is not installed" in err


class TestLogLevel:
    def test_log_level_flag_configures_root_logger(self, capsys):
        logger = logging.getLogger("repro")
        before = list(logger.handlers)
        level = logger.level
        try:
            code = main(["--log-level", "info"] + FLEET_ARGS)
            captured = capsys.readouterr()
            assert code == 0
            assert "fleet run complete" in captured.err
        finally:
            logger.handlers[:] = before
            logger.setLevel(level)

    def test_rejects_unknown_level(self):
        with pytest.raises(SystemExit):
            main(["--log-level", "loud"] + FLEET_ARGS)
