"""Run reports: trace loading, aggregation, text rendering."""

import pytest

from repro.obs import METRICS, instrument
from repro.obs.report import (
    event_counts,
    format_hit_miss,
    load_trace,
    render_metrics,
    span_aggregates,
    summarize_trace,
)

from tests.obs.conftest import FakeClock


def make_trace(path, events=2, metrics=True):
    """Write a small deterministic trace file and return its path."""
    with instrument.session(trace=True, clock=FakeClock()) as tracer:
        with instrument.span("orch.plan", gpus=48):
            for i in range(events):
                instrument.event("job.failure", t=float(10 * (events - i)))
            instrument.count("orch.plans")
            instrument.gauge("allocator.free_gpus", 16)
            instrument.observe("kernel.batch_size", 8.0)
        snapshot = METRICS.snapshot() if metrics else None
    tracer.export_jsonl(str(path), metrics=snapshot)
    return str(path)


def test_format_hit_miss():
    assert format_hit_miss(3, 11) == "3/11"


class TestLoadTrace:
    def test_loads_sections(self, tmp_path):
        trace = load_trace(make_trace(tmp_path / "t.jsonl"))
        assert trace["meta"]["spans"] == 1
        assert len(trace["spans"]) == 1
        assert len(trace["events"]) == 2
        assert trace["metrics"]["counters"]["orch.plans"] == 1

    def test_metrics_line_optional(self, tmp_path):
        trace = load_trace(make_trace(tmp_path / "t.jsonl", metrics=False))
        assert trace["metrics"] is None

    def test_rejects_file_without_meta(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "event", "name": "e", "time": 0.0}\n')
        with pytest.raises(ValueError, match="no meta record"):
            load_trace(str(path))

    def test_rejects_unknown_record_type(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown trace record"):
            load_trace(str(path))

    def test_rejects_version_mismatch(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"type": "meta", "version": 99, "spans": 0, "events": 0}\n'
        )
        with pytest.raises(ValueError, match="version"):
            load_trace(str(path))


class TestAggregates:
    def test_span_aggregates(self):
        spans = [
            {"name": "a", "start": 0.0, "end": 2.0},
            {"name": "a", "start": 3.0, "end": 7.0},
            {"name": "b", "start": 0.0, "end": 1.0},
        ]
        stats = span_aggregates(spans)
        assert stats["a"] == {"count": 2, "total": 6.0, "max": 4.0,
                              "mean": 3.0}
        assert stats["b"]["count"] == 1

    def test_event_counts(self):
        events = [{"name": "x"}, {"name": "y"}, {"name": "x"}]
        assert event_counts(events) == {"x": 2, "y": 1}


class TestRendering:
    def test_render_metrics_sections(self):
        text = render_metrics(
            {
                "counters": {"orch.plans": 4},
                "gauges": {"allocator.free_gpus": 16.0},
                "histograms": {
                    "kernel.batch_size": {
                        "count": 2, "total": 24.0, "min": 8.0, "max": 16.0,
                    }
                },
            }
        )
        assert "counters" in text
        assert "orch.plans" in text
        assert "allocator.free_gpus" in text
        assert "kernel.batch_size" in text

    def test_render_metrics_empty(self):
        assert render_metrics({}) == "(no metrics recorded)"

    def test_summarize_trace_sections(self, tmp_path):
        trace = load_trace(make_trace(tmp_path / "t.jsonl"))
        text = summarize_trace(trace)
        assert text.startswith("trace v1: 1 spans, 2 events")
        assert "spans (by total wall time)" in text
        assert "orch.plan" in text
        assert "timeline (t = virtual seconds)" in text
        assert "counters" in text

    def test_timeline_sorted_by_virtual_time_and_capped(self, tmp_path):
        trace = load_trace(make_trace(tmp_path / "t.jsonl", events=5))
        text = summarize_trace(trace, timeline_limit=3)
        assert "first 3 of 5" in text
        # events are emitted with descending virtual t; the timeline
        # must re-sort them ascending
        timeline = text.split("timeline")[1]
        assert timeline.index("t=10") < timeline.index("t=20")
        assert "t=50" not in timeline
