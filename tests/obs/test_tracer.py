"""Tracer: span nesting, events, error capture, JSONL export."""

import json

import pytest

from repro.obs.tracer import TRACE_VERSION, Tracer

from tests.obs.conftest import FakeClock


@pytest.fixture
def tracer():
    return Tracer(clock=FakeClock())


class TestSpans:
    def test_span_records_duration_on_close(self, tracer):
        with tracer.span("work"):
            pass
        (record,) = tracer.records
        assert record["type"] == "span"
        assert record["name"] == "work"
        assert record["start"] == 0.0
        assert record["end"] == 1.0
        assert record["parent"] is None
        assert "error" not in record

    def test_nested_spans_record_parent_ids(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.records  # completion order: inner first
        assert inner["name"] == "inner"
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None

    def test_sequential_spans_get_distinct_ids(self, tracer):
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        ids = [r["id"] for r in tracer.records]
        assert ids == [1, 2]

    def test_exception_marks_span_and_propagates(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (record,) = tracer.records
        assert record["error"] == "ValueError"

    def test_attrs_recorded_only_when_present(self, tracer):
        with tracer.span("a", gpus=48):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.records
        assert a["attrs"] == {"gpus": 48}
        assert "attrs" not in b


class TestEvents:
    def test_event_links_to_enclosing_span(self, tracer):
        with tracer.span("outer") as s:
            tracer.event("tick", t=12.5)
        event, span = tracer.records
        assert event["type"] == "event"
        assert event["span"] == s.id
        assert event["attrs"] == {"t": 12.5}

    def test_toplevel_event_has_no_span(self, tracer):
        tracer.event("tick")
        (record,) = tracer.records
        assert record["span"] is None
        assert "attrs" not in record


class TestExport:
    def test_meta_counts_spans_and_events(self, tracer):
        with tracer.span("a"):
            tracer.event("e1")
        tracer.event("e2")
        meta = json.loads(tracer.to_jsonl().splitlines()[0])
        assert meta == {
            "type": "meta",
            "version": TRACE_VERSION,
            "spans": 1,
            "events": 2,
        }

    def test_metrics_line_appended_when_given(self, tracer):
        snapshot = {"counters": {"a": 1}, "gauges": {}, "histograms": {}}
        last = json.loads(tracer.to_jsonl(metrics=snapshot).splitlines()[-1])
        assert last == {"type": "metrics", "snapshot": snapshot}

    def test_export_jsonl_round_trips(self, tracer, tmp_path):
        with tracer.span("a", gpus=8):
            tracer.event("e", t=1.0)
        path = tmp_path / "trace.jsonl"
        tracer.export_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert [json.loads(l)["type"] for l in lines] == [
            "meta", "event", "span",
        ]

    def test_identical_runs_produce_identical_bytes(self):
        def run():
            t = Tracer(clock=FakeClock())
            with t.span("outer", gpus=48):
                t.event("tick", t=3.0)
                with t.span("inner"):
                    pass
            return t.to_jsonl()

        assert run() == run()

    def test_reset_restarts_numbering(self, tracer):
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.records == []
        with tracer.span("b"):
            pass
        assert tracer.records[0]["id"] == 1
