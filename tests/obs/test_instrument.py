"""Instrumentation hooks: no-op defaults, session scoping, logging."""

import logging

import pytest

from repro.obs import METRICS, instrument

from tests.obs.conftest import FakeClock


class TestDisabledDefaults:
    def test_span_returns_shared_noop_singleton(self):
        assert instrument.span("x", gpus=1) is instrument.NOOP_SPAN
        assert instrument.span("y") is instrument.NOOP_SPAN

    def test_noop_span_supports_with(self):
        with instrument.span("x"):
            pass

    def test_event_and_metrics_hooks_drop_silently(self):
        instrument.event("e", t=1.0)
        instrument.count("c")
        instrument.gauge("g", 1.0)
        instrument.observe("h", 1.0)
        assert METRICS.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_kernel_span_is_noop(self):
        assert instrument.kernel_span("k", 32) is instrument.NOOP_SPAN
        assert METRICS.counter_value("kernel.evaluations") == 0

    def test_state_predicates(self):
        assert not instrument.tracing_enabled()
        assert not instrument.metrics_enabled()
        assert not instrument.enabled()
        assert instrument.current_tracer() is None


class TestEnabledHooks:
    def test_span_and_event_record_through_hooks(self):
        tracer = instrument.enable_tracing(clock=FakeClock())
        with instrument.span("outer", gpus=48):
            instrument.event("tick", t=5.0)
        assert [r["name"] for r in tracer.records] == ["tick", "outer"]

    def test_metrics_hooks_hit_global_registry(self):
        instrument.enable_metrics()
        instrument.count("c", 2)
        instrument.gauge("g", 7.0)
        instrument.observe("h", 3.0)
        assert METRICS.counter_value("c") == 2
        assert METRICS.gauge_value("g") == 7.0

    def test_kernel_span_counts_batch_and_opens_span(self):
        tracer = instrument.enable_tracing(clock=FakeClock())
        instrument.enable_metrics()
        with instrument.kernel_span("kernel.evaluate_batch", 16):
            pass
        assert METRICS.counter_value("kernel.evaluations") == 16
        hist = METRICS.snapshot()["histograms"]["kernel.batch_size"]
        assert hist == {"count": 1, "total": 16.0, "min": 16.0, "max": 16.0}
        assert tracer.records[0]["attrs"] == {"batch": 16}

    def test_disable_tracing_returns_tracer_with_records(self):
        instrument.enable_tracing(clock=FakeClock())
        with instrument.span("a"):
            pass
        tracer = instrument.disable_tracing()
        assert tracer is not None
        assert len(tracer.records) == 1
        assert instrument.span("b") is instrument.NOOP_SPAN


class TestSession:
    def test_trace_session_yields_tracer_and_restores(self):
        with instrument.session(trace=True, clock=FakeClock()) as tracer:
            assert instrument.tracing_enabled()
            assert instrument.metrics_enabled()  # tracing implies metrics
            with instrument.span("a"):
                pass
        assert not instrument.enabled()
        assert len(tracer.records) == 1

    def test_metrics_only_session(self):
        with instrument.session(metrics=True) as tracer:
            assert tracer is None
            assert instrument.metrics_enabled()
            assert not instrument.tracing_enabled()
            instrument.count("c")
        assert METRICS.counter_value("c") == 1
        assert not instrument.metrics_enabled()

    def test_session_resets_registry_by_default(self):
        METRICS.count("stale")
        with instrument.session(metrics=True):
            assert METRICS.counter_value("stale") == 0

    def test_session_keeps_registry_with_reset_false(self):
        METRICS.count("stale")
        with instrument.session(metrics=True, reset=False):
            assert METRICS.counter_value("stale") == 1

    def test_session_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with instrument.session(trace=True):
                raise RuntimeError("boom")
        assert not instrument.enabled()


class TestLogging:
    def test_library_root_logger_has_null_handler(self):
        import repro  # noqa: F401  (handler installed at import)

        handlers = logging.getLogger("repro").handlers
        assert any(isinstance(h, logging.NullHandler) for h in handlers)

    def test_configure_logging_sets_level_and_stream_handler(self):
        logger = logging.getLogger("repro")
        before = list(logger.handlers)
        level = logger.level
        try:
            instrument.configure_logging("debug")
            assert logger.level == logging.DEBUG
            streams = [
                h for h in logger.handlers
                if isinstance(h, logging.StreamHandler)
                and not isinstance(h, logging.NullHandler)
            ]
            assert len(streams) == 1
            # idempotent: a second call must not stack handlers
            instrument.configure_logging("info")
            streams_after = [
                h for h in logger.handlers
                if isinstance(h, logging.StreamHandler)
                and not isinstance(h, logging.NullHandler)
            ]
            assert len(streams_after) == 1
        finally:
            logger.handlers[:] = before
            logger.setLevel(level)

    def test_configure_logging_rejects_unknown_level(self):
        with pytest.raises(ValueError, match="unknown log level"):
            instrument.configure_logging("loud")
