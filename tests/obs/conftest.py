"""Shared observability-test fixtures.

Observability state is process-global (the instrument module's tracer
slot and metrics flag), so every test in this package runs behind an
autouse guard that restores the disabled default and an empty registry
— a failing test can never leak an enabled tracer into the rest of the
suite.
"""

import pytest

from repro.obs import METRICS, instrument


@pytest.fixture(autouse=True)
def obs_disabled():
    instrument.disable_tracing()
    instrument.disable_metrics()
    METRICS.reset()
    yield
    instrument.disable_tracing()
    instrument.disable_metrics()
    METRICS.reset()


class FakeClock:
    """Monotonic integer clock: 0.0, 1.0, 2.0, ... per call."""

    def __init__(self):
        self.now = -1.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now
