"""Shared runtime fixtures."""

import pytest

from repro.cluster.cluster import make_cluster
from repro.data.synthetic import SyntheticMultimodalDataset
from repro.models.mllm import MLLM_9B
from repro.parallelism.orchestration_plan import ModelOrchestrationPlan
from repro.parallelism.plan import ParallelismPlan


@pytest.fixture(scope="session")
def small_plan():
    """Hand-built disaggregated plan: 4 enc + 16 llm + 4 gen on 24 GPUs."""
    return ModelOrchestrationPlan(
        mllm=MLLM_9B,
        cluster=make_cluster(24),
        encoder_plan=ParallelismPlan(tp=1, pp=1, dp=4),
        llm_plan=ParallelismPlan(tp=8, pp=1, dp=2),
        generator_plan=ParallelismPlan(tp=1, pp=1, dp=4),
    )


@pytest.fixture(scope="session")
def small_batch():
    return SyntheticMultimodalDataset(seed=2).take(16)
