"""Failure injection / goodput tests."""

import pytest

from repro.runtime.failure import FailureModel, run_with_failures


class TestFailureModel:
    def test_cluster_mtbf_shrinks_with_scale(self):
        model = FailureModel()
        assert model.cluster_mtbf_seconds(1000) == pytest.approx(
            model.cluster_mtbf_seconds(1) / 1000
        )

    def test_invalid_gpus(self):
        with pytest.raises(ValueError):
            FailureModel().cluster_mtbf_seconds(0)

    def test_failure_times_sorted_within_horizon(self):
        model = FailureModel(mtbf_gpu_hours=10.0)
        times = model.sample_failure_times(1000, 3600.0, seed=1)
        assert times == sorted(times)
        assert all(0 < t < 3600.0 for t in times)

    def test_reliable_cluster_rarely_fails(self):
        model = FailureModel(mtbf_gpu_hours=1e9)
        assert model.sample_failure_times(8, 3600.0, seed=0) == []


class TestRunWithFailures:
    def test_no_failures_full_goodput(self):
        report = run_with_failures(
            iteration_seconds=1.0,
            num_iterations=100,
            num_gpus=8,
            failures=FailureModel(mtbf_gpu_hours=1e12),
        )
        assert report.num_failures == 0
        assert report.goodput > 0.95

    def test_flaky_cluster_loses_goodput(self):
        report = run_with_failures(
            iteration_seconds=1.0,
            num_iterations=200,
            num_gpus=1000,
            failures=FailureModel(mtbf_gpu_hours=50.0, restart_seconds=60.0),
            checkpoint_interval=50,
            seed=3,
        )
        assert report.num_failures > 0
        assert report.goodput < 0.95
        assert report.total_seconds > report.useful_seconds

    def test_frequent_checkpoints_reduce_replay(self):
        kwargs = dict(
            iteration_seconds=1.0,
            num_iterations=300,
            num_gpus=2000,
            failures=FailureModel(mtbf_gpu_hours=100.0, restart_seconds=30.0),
            seed=7,
        )
        sparse = run_with_failures(checkpoint_interval=100, **kwargs)
        dense = run_with_failures(checkpoint_interval=10, **kwargs)
        assert dense.replayed_iterations <= sparse.replayed_iterations

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            run_with_failures(0.0, 10, 8, FailureModel())
