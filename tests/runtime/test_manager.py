"""DistTrainManager lifecycle tests (section 3, Figure 8)."""

import pytest

from repro.core.config import DistTrainConfig
from repro.runtime.checkpoint import CheckpointConfig
from repro.runtime.manager import DistTrainManager


@pytest.fixture(scope="module")
def manager():
    config = DistTrainConfig.preset("mllm-9b", 48, 32, num_iterations=1)
    return DistTrainManager(config)


class TestManagerPhase:
    def test_data_analysis_cached(self, manager):
        profile_a = manager.analyze_data()
        profile_b = manager.analyze_data()
        assert profile_a is profile_b
        assert profile_a.image_tokens > 0

    def test_orchestrate_cached(self, manager):
        assert manager.orchestrate() is manager.orchestrate()

    def test_baseline_system_uses_its_orchestrator(self):
        config = DistTrainConfig.preset(
            "mllm-9b", 48, 32, system="megatron-lm"
        )
        result = DistTrainManager(config).orchestrate()
        assert result.plan.monolithic


class TestInitializerPhase:
    def test_units_cover_disjoint_ranks(self, manager):
        init = manager.initialize()
        ranks = []
        for unit in init.units.values():
            ranks.extend(unit.global_ranks)
        assert len(ranks) == len(set(ranks))
        assert max(ranks) < 48

    def test_brokers_for_both_boundaries(self, manager):
        init = manager.initialize()
        assert set(init.brokers) == {"encoder->llm", "llm->generator"}

    def test_warmup_trials_recorded(self, manager):
        init = manager.initialize()
        assert all(t > 0 for t in init.warmup_trial_seconds.values())

    def test_cpu_pool_sized(self, manager):
        init = manager.initialize()
        assert init.recommended_cpu_nodes >= 1

    def test_describe(self, manager):
        text = manager.initialize().describe()
        assert "unit 'llm'" in text
        assert "broker" in text


class TestRuntimePhase:
    def test_run_produces_metrics(self, manager):
        result = manager.run(num_iterations=1)
        assert len(result.iterations) == 1
        assert result.mean_mfu > 0.1

    def test_run_with_checkpointing(self):
        config = DistTrainConfig.preset("mllm-9b", 48, 32)
        manager = DistTrainManager(
            config, checkpoint=CheckpointConfig(interval_iterations=1)
        )
        result = manager.run(num_iterations=2)
        assert result.checkpoint_stall > 0


class TestErrorPaths:
    """Lifecycle misuse and infeasible tasks fail loudly, not weirdly."""

    def test_run_before_initialize_self_initializes(self):
        # run() without an explicit initialize() must drive the full
        # manager -> initializer -> runtime flow itself.
        config = DistTrainConfig.preset("mllm-9b", 48, 32, num_iterations=1)
        manager = DistTrainManager(config)
        assert manager._initialization is None
        result = manager.run(num_iterations=1)
        assert manager._initialization is not None
        assert len(result.iterations) == 1
        # The self-initialized report is the cached one: a later
        # explicit initialize() returns the same object.
        assert manager.initialize() is manager._initialization

    def test_infeasible_cluster_raises_from_orchestrate(self):
        # 8 GPUs cannot host the 72B model: the adaptive search finds no
        # feasible candidate and every lifecycle phase surfaces that.
        config = DistTrainConfig.preset("mllm-72b", 8, 8)
        manager = DistTrainManager(config)
        with pytest.raises(RuntimeError, match="no feasible orchestration"):
            manager.orchestrate()
        with pytest.raises(RuntimeError, match="no feasible orchestration"):
            manager.run(num_iterations=1)

    def test_invalid_iteration_count_raises(self, manager):
        with pytest.raises(ValueError, match="num_iterations"):
            manager.run(num_iterations=0)

    def test_run_scenario_runs_lifecycle_first(self):
        from repro.scenarios import ScenarioSpec

        config = DistTrainConfig.preset("mllm-9b", 48, 16)
        manager = DistTrainManager(config)
        result = manager.run_scenario(ScenarioSpec(num_iterations=4))
        assert manager._initialization is not None
        assert result.num_iterations == 4

    def test_run_scenario_honors_manager_checkpoint_policy(self):
        # The manager's checkpoint config overrides the scenario's
        # default interval, exactly as it does for run().
        from repro.scenarios import ScenarioSpec

        config = DistTrainConfig.preset("mllm-9b", 48, 16)
        spec = ScenarioSpec(num_iterations=6, checkpoint_interval=50)
        without = DistTrainManager(config).run_scenario(spec)
        assert without.checkpoint_stall_seconds == 0.0  # interval 50 > 6
        with_policy = DistTrainManager(
            config, checkpoint=CheckpointConfig(interval_iterations=2)
        ).run_scenario(spec)
        assert with_policy.checkpoint_stall_seconds > 0.0
