"""Fused multi-batch evaluation is per-batch evaluation, bit for bit.

:func:`~repro.runtime.iteration.evaluate_prepared_many` stacks the
per-rank duration rows of many prepared batches that compile to the
same pipeline kernel into one ``evaluate_batch`` sweep. The kernel's
level sweep is row-independent, so every task's slice of the stacked
call must equal its own :meth:`evaluate_prepared` — including straggler
re-pricing — and tasks on *different* kernels must group correctly.
"""

import numpy as np
import pytest

from repro.cluster.cluster import make_cluster
from repro.models.mllm import MLLM_9B
from repro.parallelism.orchestration_plan import ModelOrchestrationPlan
from repro.parallelism.plan import ParallelismPlan
from repro.runtime.iteration import (
    TrainingIterationSimulator,
    evaluate_prepared_many,
)


def simulator(plan):
    return TrainingIterationSimulator(
        plan,
        intra_reordering=True,
        inter_reordering=True,
        preprocessing="disaggregated",
    )


@pytest.fixture(scope="module")
def deep_plan():
    """A second plan with a different pipeline shape, so fused tasks
    span two distinct compiled kernels."""
    return ModelOrchestrationPlan(
        mllm=MLLM_9B,
        cluster=make_cluster(24),
        encoder_plan=ParallelismPlan(tp=1, pp=1, dp=4),
        llm_plan=ParallelismPlan(tp=4, pp=2, dp=2),
        generator_plan=ParallelismPlan(tp=1, pp=1, dp=4),
    )


def test_fused_matches_per_task_evaluation(
    small_plan, deep_plan, small_batch
):
    from repro.data.synthetic import SyntheticMultimodalDataset

    batches = [
        small_batch,
        SyntheticMultimodalDataset(seed=7).take(16),
        SyntheticMultimodalDataset(seed=9).take(16),
    ]
    sims = [simulator(small_plan), simulator(deep_plan)]
    tasks = []
    for sim in sims:
        for index, batch in enumerate(batches):
            prepared = sim.prepare(batch)
            n_ranks = len(prepared.rank_work)
            if index == 1:
                slowdowns = None  # base evaluation rides along
            else:
                slowdowns = np.ones(n_ranks)
                slowdowns[index % n_ranks] = 1.5 + index
            tasks.append((sim, prepared, slowdowns))

    fused = evaluate_prepared_many(tasks)
    for (sim, prepared, slowdowns), fused_result in zip(tasks, fused):
        solo = sim.evaluate_prepared(prepared, rank_slowdowns=slowdowns)
        assert fused_result == solo  # exact: dataclass of floats


def test_fused_empty_and_singleton():
    assert evaluate_prepared_many([]) == []


def test_fused_singleton_is_evaluate_prepared(small_plan, small_batch):
    sim = simulator(small_plan)
    prepared = sim.prepare(small_batch)
    [fused] = evaluate_prepared_many([(sim, prepared, None)])
    assert fused == sim.evaluate_prepared(prepared)
