"""Multi-iteration training run tests."""

import pytest

from repro.data.synthetic import SyntheticMultimodalDataset
from repro.runtime.checkpoint import CheckpointConfig
from repro.runtime.failure import FailureModel
from repro.runtime.iteration import TrainingIterationSimulator
from repro.runtime.trainer import TrainingRun


def make_run(small_plan, **kwargs):
    simulator = TrainingIterationSimulator(small_plan)
    defaults = dict(
        simulator=simulator,
        dataset=SyntheticMultimodalDataset(seed=9),
        global_batch_size=16,
        num_iterations=3,
    )
    defaults.update(kwargs)
    return TrainingRun(**defaults)


class TestTrainingRun:
    def test_aggregates(self, small_plan):
        result = make_run(small_plan).run()
        assert len(result.iterations) == 3
        assert result.mean_mfu > 0
        assert result.mean_iteration_time > 0
        summary = result.summary()
        assert summary["iterations"] == 3

    def test_checkpointing_recorded(self, small_plan):
        result = make_run(
            small_plan,
            num_iterations=5,
            checkpoint=CheckpointConfig(interval_iterations=2),
        ).run()
        assert result.checkpoint_stall > 0

    def test_failures_produce_goodput_report(self, small_plan):
        result = make_run(
            small_plan,
            failures=FailureModel(mtbf_gpu_hours=1e12),
        ).run()
        assert result.goodput is not None
        assert result.goodput.goodput > 0.9

    def test_invalid_iterations(self, small_plan):
        with pytest.raises(ValueError):
            make_run(small_plan, num_iterations=0).run()

    def test_iteration_times_stable_across_batches(self, small_plan):
        """Different global batches draw from the same distribution, so
        iteration times should be within a modest band."""
        result = make_run(small_plan, num_iterations=4).run()
        times = [r.iteration_time for r in result.iterations]
        assert max(times) / min(times) < 1.5
