"""Training-iteration simulator tests."""

import pytest

from repro.runtime.frozen import FROZEN_PRESETS
from repro.runtime.iteration import TrainingIterationSimulator


def simulator(plan, **kwargs):
    defaults = dict(intra_reordering=True, inter_reordering=True,
                    preprocessing="disaggregated")
    defaults.update(kwargs)
    return TrainingIterationSimulator(plan, **defaults)


class TestBasicInvariants:
    def test_result_composition(self, small_plan, small_batch):
        result = simulator(small_plan).simulate(small_batch)
        assert result.iteration_time == pytest.approx(
            result.pipeline_time
            + result.dp_sync_time
            + result.preprocess_overhead
            + result.optimizer_time
        )

    def test_mfu_within_physical_bounds(self, small_plan, small_batch):
        result = simulator(small_plan).simulate(small_batch)
        assert 0.05 < result.mfu < 0.70

    def test_throughput_formula(self, small_plan, small_batch):
        result = simulator(small_plan).simulate(small_batch)
        expected = 16 * 8192 / result.iteration_time
        assert result.throughput_tokens_per_s == pytest.approx(expected)

    def test_gpus_counted_from_plan(self, small_plan, small_batch):
        result = simulator(small_plan).simulate(small_batch)
        assert result.num_gpus == 24

    def test_batch_divisibility_checked(self, small_plan, small_batch):
        with pytest.raises(ValueError):
            simulator(small_plan).simulate(small_batch[:15])

    def test_invalid_preprocessing_mode(self, small_plan):
        with pytest.raises(ValueError):
            simulator(small_plan, preprocessing="magic")


class TestReorderingEffects:
    def test_intra_reordering_reduces_straggling(self, small_plan, small_batch):
        balanced = simulator(small_plan, intra_reordering=True,
                             inter_reordering=False).simulate(small_batch)
        random = simulator(small_plan, intra_reordering=False,
                           inter_reordering=False).simulate(small_batch)
        assert balanced.straggler_spread <= random.straggler_spread + 1e-9

    def test_full_reordering_no_slower(self, small_plan, small_batch):
        ours = simulator(small_plan).simulate(small_batch)
        none = simulator(small_plan, intra_reordering=False,
                         inter_reordering=False).simulate(small_batch)
        assert ours.pipeline_time <= none.pipeline_time * 1.05


class TestPreprocessingModes:
    def test_colocated_costs_more(self, small_plan, small_batch):
        colocated = simulator(small_plan, preprocessing="colocated").simulate(
            small_batch
        )
        disagg = simulator(small_plan).simulate(small_batch)
        none = simulator(small_plan, preprocessing="none").simulate(
            small_batch
        )
        assert (
            colocated.preprocess_overhead
            > disagg.preprocess_overhead
            >= none.preprocess_overhead == 0.0
        )


class TestFrozenTraining:
    @pytest.mark.parametrize(
        "preset", ["all-frozen", "encoder-only", "llm-only", "generator-only"]
    )
    def test_frozen_faster_than_full(self, small_plan, small_batch, preset):
        full = simulator(small_plan).simulate(small_batch)
        frozen = simulator(
            small_plan, frozen=FROZEN_PRESETS[preset]
        ).simulate(small_batch)
        assert frozen.pipeline_time < full.pipeline_time

    def test_frozen_modules_skip_dp_sync(self, small_plan, small_batch):
        frozen = simulator(
            small_plan, frozen=FROZEN_PRESETS["all-frozen"]
        ).simulate(small_batch)
        full = simulator(small_plan).simulate(small_batch)
        assert frozen.dp_sync_time <= full.dp_sync_time


class TestRankSubsampling:
    def test_subsampled_matches_full_on_max(self, small_plan, small_batch):
        full = simulator(small_plan, max_simulated_ranks=0).simulate(
            small_batch
        )
        sampled = simulator(small_plan, max_simulated_ranks=2).simulate(
            small_batch
        )
        # The heaviest rank is always simulated, so the pipeline phase
        # (a max across ranks) should agree closely.
        assert sampled.pipeline_time == pytest.approx(
            full.pipeline_time, rel=0.05
        )
