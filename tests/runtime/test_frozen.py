"""Frozen-training configuration tests (section 7.3 semantics)."""

import pytest

from repro.runtime.frozen import FROZEN_PRESETS, FrozenConfig


class TestPresets:
    def test_four_paper_settings_present(self):
        for name in ("all-frozen", "encoder-only", "llm-only",
                      "generator-only", "full"):
            assert name in FROZEN_PRESETS

    def test_full_trains_everything(self):
        full = FROZEN_PRESETS["full"]
        assert all(full.trains(m) for m in ("encoder", "llm", "generator"))

    def test_unknown_module(self):
        with pytest.raises(KeyError):
            FrozenConfig().trains("audio")


class TestBackwardRequirements:
    def test_full_training_full_backward(self):
        full = FrozenConfig()
        for module in ("encoder", "llm", "generator"):
            assert full.backward_factor(module) == 2.0

    def test_frozen_encoder_skips_backward_entirely(self):
        """Nothing is upstream of the encoder: frozen => no backward."""
        cfg = FROZEN_PRESETS["llm-only"]
        assert cfg.backward_factor("encoder") == 0.0

    def test_frozen_llm_relays_gradients(self):
        """Trainable encoder/projectors upstream force the frozen LLM to
        compute dX (factor 1.0)."""
        cfg = FROZEN_PRESETS["encoder-only"]
        assert cfg.backward_factor("llm") == 1.0

    def test_generator_only(self):
        cfg = FROZEN_PRESETS["generator-only"]
        assert cfg.backward_factor("generator") == 2.0
        assert cfg.backward_factor("llm") == 1.0  # projectors still train
        assert cfg.backward_factor("encoder") == 0.0

    def test_all_frozen_projector_training_still_relays(self):
        cfg = FROZEN_PRESETS["all-frozen"]
        assert cfg.backward_factor("llm") == 1.0
        assert cfg.backward_factor("generator") == 1.0
        assert cfg.backward_factor("encoder") == 0.0

    def test_no_projectors_no_relay(self):
        cfg = FrozenConfig(
            train_encoder=False,
            train_llm=False,
            train_generator=False,
            train_projectors=False,
        )
        assert cfg.backward_factor("generator") == 0.0


class TestDescribe:
    def test_labels(self):
        assert FROZEN_PRESETS["all-frozen"].describe() == "projectors-only"
        assert FROZEN_PRESETS["full"].describe() == "full-training"
        assert "encoder" in FROZEN_PRESETS["encoder-only"].describe()
