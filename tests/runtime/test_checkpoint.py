"""Async checkpointing tests."""

import pytest

from repro.runtime.checkpoint import AsyncCheckpointer, CheckpointConfig


def checkpointer(interval=10, state=100e9, per_gpu=1e9, **kwargs):
    return AsyncCheckpointer(
        config=CheckpointConfig(interval_iterations=interval, **kwargs),
        state_bytes=state,
        per_gpu_state_bytes=per_gpu,
    )


class TestCheckpointer:
    def test_interval_respected(self):
        cp = checkpointer(interval=5)
        stalls = [cp.on_iteration(i, float(i)) for i in range(1, 16)]
        stalled_iters = [i + 1 for i, s in enumerate(stalls) if s > 0]
        assert stalled_iters == [5, 10, 15]

    def test_no_stall_at_iteration_zero(self):
        assert checkpointer().on_iteration(0, 0.0) == 0.0

    def test_snapshot_stall_value(self):
        cp = checkpointer(per_gpu=20e9, snapshot_bandwidth=20e9)
        assert cp.snapshot_stall == pytest.approx(1.0)

    def test_back_to_back_checkpoints_wait_for_upload(self):
        cp = checkpointer(interval=1, state=400e9, upload_bandwidth=40e9)
        first = cp.on_iteration(1, 1.0)
        # Next request arrives long before the 10s upload finishes.
        second = cp.on_iteration(2, 2.0)
        assert second > first

    def test_total_stall_accumulates(self):
        cp = checkpointer(interval=2)
        for i in range(1, 9):
            cp.on_iteration(i, float(i) * 100)
        assert cp.snapshots_taken == 4
        assert cp.total_stall == pytest.approx(4 * cp.snapshot_stall)

    def test_last_checkpoint_iteration(self):
        cp = checkpointer(interval=10)
        assert cp.last_checkpoint_iteration(37) == 30
        assert cp.last_checkpoint_iteration(9) == 0

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            CheckpointConfig(interval_iterations=0)
