"""Async checkpointing tests."""

import pytest

from repro.runtime.checkpoint import AsyncCheckpointer, CheckpointConfig


def checkpointer(interval=10, state=100e9, per_gpu=1e9, **kwargs):
    return AsyncCheckpointer(
        config=CheckpointConfig(interval_iterations=interval, **kwargs),
        state_bytes=state,
        per_gpu_state_bytes=per_gpu,
    )


class TestCheckpointer:
    def test_interval_respected(self):
        cp = checkpointer(interval=5)
        stalls = [cp.on_iteration(i, float(i)) for i in range(1, 16)]
        stalled_iters = [i + 1 for i, s in enumerate(stalls) if s > 0]
        assert stalled_iters == [5, 10, 15]

    def test_no_stall_at_iteration_zero(self):
        assert checkpointer().on_iteration(0, 0.0) == 0.0

    def test_snapshot_stall_value(self):
        cp = checkpointer(per_gpu=20e9, snapshot_bandwidth=20e9)
        assert cp.snapshot_stall == pytest.approx(1.0)

    def test_back_to_back_checkpoints_wait_for_upload(self):
        cp = checkpointer(interval=1, state=400e9, upload_bandwidth=40e9)
        first = cp.on_iteration(1, 1.0)
        # Next request arrives long before the 10s upload finishes.
        second = cp.on_iteration(2, 2.0)
        assert second > first

    def test_total_stall_accumulates(self):
        cp = checkpointer(interval=2)
        for i in range(1, 9):
            cp.on_iteration(i, float(i) * 100)
        assert cp.snapshots_taken == 4
        assert cp.total_stall == pytest.approx(4 * cp.snapshot_stall)

    def test_last_checkpoint_iteration(self):
        cp = checkpointer(interval=10)
        assert cp.last_checkpoint_iteration(37) == 30
        assert cp.last_checkpoint_iteration(9) == 0

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            CheckpointConfig(interval_iterations=0)


class TestRestartBookkeeping:
    """Error/recovery paths: where a failed job resumes from."""

    def test_fresh_checkpointer_restarts_from_zero(self):
        cp = checkpointer(interval=10)
        assert cp.durable_resume_iteration(now=123.0) == 0
        assert cp.restart_from_latest(now=123.0) == 0
        assert cp.restarts == 1

    def test_uploaded_checkpoint_is_durable(self):
        # The snapshot taken after iteration 10 covers iterations 0..10:
        # once uploaded, a restart resumes at iteration 11.
        cp = checkpointer(interval=10, state=100e9, upload_bandwidth=40e9)
        cp.on_iteration(10, 100.0)  # upload takes 2.5 s
        assert cp.durable_resume_iteration(now=200.0) == 11

    def test_failure_during_upload_rolls_back_further(self):
        # Snapshot after iteration 20 is mid-upload when the failure
        # hits: the job must reload the *previous* durable checkpoint
        # and re-execute from iteration 11.
        cp = checkpointer(interval=10, state=400e9, upload_bandwidth=40e9)
        cp.on_iteration(10, 100.0)
        cp.on_iteration(20, 200.0)  # upload in flight until ~210 s
        assert cp.durable_resume_iteration(now=201.0) == 11
        assert cp.restart_from_latest(now=201.0) == 11
        # After the restart no upload is pending: the reloaded
        # checkpoint is durable and a second immediate failure does not
        # roll back any further.
        assert cp.durable_resume_iteration(now=201.0) == 11
        assert cp.restart_from_latest(now=201.0) == 11
        assert cp.restarts == 2

    def test_waiting_for_upload_makes_it_durable(self):
        # Back-to-back checkpoints: the stall waits for the previous
        # upload, which therefore becomes durable.
        cp = checkpointer(interval=1, state=400e9, upload_bandwidth=40e9)
        cp.on_iteration(1, 1.0)
        cp.on_iteration(2, 2.0)  # stalls until iteration 1's upload ends
        assert cp.durable_resume_iteration(now=2.0) >= 2

    def test_resume_from_seeds_bookkeeping(self):
        cp = checkpointer(interval=10)
        cp.resume_from(40)
        assert cp.durable_resume_iteration(now=0.0) == 40
        assert cp.restart_from_latest(now=0.0) == 40

    def test_resume_from_rejects_negative(self):
        with pytest.raises(ValueError):
            checkpointer().resume_from(-1)

    def test_restart_counts_accumulate(self):
        cp = checkpointer(interval=5)
        for _ in range(3):
            cp.restart_from_latest(now=10.0)
        assert cp.restarts == 3
