"""MFU and throughput accounting tests."""

import pytest

from repro.data.synthetic import SyntheticMultimodalDataset
from repro.models.mllm import MLLM_9B
from repro.runtime.frozen import FROZEN_PRESETS, FrozenConfig
from repro.runtime.mfu import ModelFlopsAccountant, mfu, token_throughput

SAMPLES = SyntheticMultimodalDataset(seed=0).take(16)


class TestAccountant:
    def test_positive_flops(self):
        accountant = ModelFlopsAccountant(MLLM_9B, FrozenConfig())
        assert accountant.batch_flops(SAMPLES) > 0

    def test_frozen_training_needs_fewer_flops(self):
        full = ModelFlopsAccountant(MLLM_9B, FrozenConfig())
        frozen = ModelFlopsAccountant(MLLM_9B, FROZEN_PRESETS["all-frozen"])
        assert frozen.batch_flops(SAMPLES) < full.batch_flops(SAMPLES)

    def test_batch_is_sum_of_samples(self):
        accountant = ModelFlopsAccountant(MLLM_9B, FrozenConfig())
        total = sum(accountant.sample_flops(s) for s in SAMPLES)
        assert accountant.batch_flops(SAMPLES) == pytest.approx(total)

    def test_llm_dominates_sample_flops(self):
        accountant = ModelFlopsAccountant(MLLM_9B, FrozenConfig())
        sample = SAMPLES[0]
        llm_fwd = MLLM_9B.llm.forward_flops(sample.workload())
        assert accountant.sample_flops(sample) > 3 * llm_fwd

    def test_generator_workload_uses_generation_resolution(self):
        accountant = ModelFlopsAccountant(MLLM_9B, FrozenConfig())
        sample = next(s for s in SAMPLES if s.num_images > 0)
        workload = accountant.generator_workload(sample)
        assert workload.image_tokens == sample.num_images * 1024


class TestMfu:
    def test_basic(self):
        assert mfu(1e15, 10.0, 8, 312e12) == pytest.approx(
            1e15 / (10.0 * 8 * 312e12)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            mfu(1.0, 0.0, 8, 312e12)
        with pytest.raises(ValueError):
            mfu(1.0, 1.0, 0, 312e12)


class TestThroughput:
    def test_tokens_per_second(self):
        assert token_throughput(1920, 8192, 10.0) == pytest.approx(
            1920 * 8192 / 10.0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            token_throughput(1, 1, 0.0)
