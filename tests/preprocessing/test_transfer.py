"""Preprocessed-tensor transfer model tests."""

import pytest

from repro.preprocessing.transfer import TransferModel

from tests.preprocessing.test_cost import image_sample


class TestTransfer:
    def test_sample_bytes_dominated_by_images(self):
        t = TransferModel()
        s = image_sample(8, 512, text=256)
        image_bytes = s.image_tokens * t.bytes_per_image_token
        assert t.sample_bytes(s) == pytest.approx(image_bytes, rel=0.01)

    def test_rdma_faster_than_tcp_rpc(self):
        s = image_sample(8, 512)
        rdma = TransferModel(use_rdma=True)
        tcp = TransferModel(use_rdma=False)
        assert rdma.sample_transfer_time(s) < tcp.sample_transfer_time(s)

    def test_batched_message_cheaper_than_singles(self):
        t = TransferModel()
        samples = [image_sample(4, 512) for _ in range(8)]
        batched = t.microbatch_transfer_time(samples)
        singles = sum(t.sample_transfer_time(s) for s in samples)
        assert batched < singles

    def test_transfer_is_milliseconds(self):
        t = TransferModel()
        assert t.sample_transfer_time(image_sample(10, 1024)) < 0.05
