"""Property-based tests for the preprocessing subsystem."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.synthetic import SyntheticMultimodalDataset
from repro.preprocessing.cost import PreprocessCostModel
from repro.preprocessing.service import PreprocessingService
from repro.preprocessing.transfer import TransferModel


@settings(max_examples=20, deadline=None)
@given(
    cores=st.integers(min_value=8, max_value=4096),
    iteration=st.floats(min_value=0.5, max_value=20.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_service_conservation(cores, iteration, seed):
    """The queue simulation conserves batches and never time-travels."""
    dataset = SyntheticMultimodalDataset(seed=seed)
    batches = [dataset.take(4) for _ in range(5)]
    service = PreprocessingService(
        cost=PreprocessCostModel(),
        transfer=TransferModel(),
        total_cores=cores,
    )
    feeds = service.simulate(batches, gpu_iteration_time=iteration)
    assert len(feeds) == 5
    assert all(f.stall >= 0 for f in feeds)
    assert all(f.transfer > 0 for f in feeds)
    # Ready times are non-decreasing (FIFO producers).
    ready = [f.ready_time for f in feeds]
    assert ready == sorted(ready)


@settings(max_examples=20, deadline=None)
@given(
    cores_small=st.integers(min_value=2, max_value=32),
    multiplier=st.integers(min_value=2, max_value=16),
)
def test_more_cores_never_more_stall(cores_small, multiplier):
    dataset = SyntheticMultimodalDataset(seed=0)
    batches = [dataset.take(4) for _ in range(4)]

    def total_stall(cores):
        service = PreprocessingService(
            cost=PreprocessCostModel(),
            transfer=TransferModel(),
            total_cores=cores,
        )
        feeds = service.simulate(batches, gpu_iteration_time=2.0)
        return PreprocessingService.total_stall(feeds)

    assert total_stall(cores_small * multiplier) <= total_stall(
        cores_small
    ) + 1e-9


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_cost_model_additivity(seed):
    """Batch cost equals the sum of per-sample costs; all positive."""
    dataset = SyntheticMultimodalDataset(seed=seed)
    samples = dataset.take(6)
    cost = PreprocessCostModel()
    total = cost.batch_cpu_seconds(samples)
    assert total == pytest.approx(
        sum(cost.sample_cpu_seconds(s) for s in samples)
    )
    assert all(cost.sample_cpu_seconds(s) > 0 for s in samples)
