"""Co-located vs disaggregated preprocessing (Figure 17's comparison)."""

import pytest

from repro.cluster.node import AMPERE_NODE
from repro.preprocessing.colocated import CoLocatedPreprocessing
from repro.preprocessing.cost import PreprocessCostModel
from repro.preprocessing.disaggregated import (
    DisaggregatedPreprocessing,
    required_cpu_nodes,
)
from repro.preprocessing.transfer import TransferModel

from tests.preprocessing.test_cost import image_sample


def colocated(**kwargs):
    return CoLocatedPreprocessing(
        node=AMPERE_NODE, cost=PreprocessCostModel(), **kwargs
    )


def disaggregated(**kwargs):
    return DisaggregatedPreprocessing(
        cost=PreprocessCostModel(), transfer=TransferModel(), **kwargs
    )


class TestCoLocated:
    def test_exposed_overhead_is_seconds_for_heavy_batches(self):
        batch = [image_sample(16, 1024) for _ in range(8)]
        overhead = colocated().exposed_overhead(batch, gpu_iteration_time=5.0)
        assert overhead > 0.5  # seconds-scale (Figure 17 left bars)

    def test_overlap_hides_some_cost(self):
        batch = [image_sample(8, 512)]
        eager = colocated(overlap_fraction=0.0)
        lazy = colocated(overlap_fraction=0.5)
        assert lazy.exposed_overhead(batch, 10.0) < eager.exposed_overhead(
            batch, 10.0
        )

    def test_more_workers_less_overhead(self):
        batch = [image_sample(8, 1024)]
        few = colocated(dataloader_workers=4)
        many = colocated(dataloader_workers=64)
        assert many.cpu_seconds(batch) < few.cpu_seconds(batch)

    def test_validation(self):
        with pytest.raises(ValueError):
            colocated(dataloader_workers=0)
        with pytest.raises(ValueError):
            colocated(overlap_fraction=1.0)

    def test_figure17_helper(self):
        c = colocated()
        t_512 = c.exposed_overhead_for_images(8, 512)
        t_1024 = c.exposed_overhead_for_images(8, 1024)
        assert t_1024 > 3 * t_512


class TestDisaggregated:
    def test_overhead_is_milliseconds(self):
        """Figure 17: disaggregation turns seconds into milliseconds."""
        d = disaggregated(cpu_nodes=8)
        batch = [image_sample(16, 1024) for _ in range(8)]
        overhead = d.exposed_overhead(batch, iteration_time=10.0)
        assert overhead < 0.1

    def test_keeps_up_with_enough_nodes(self):
        batch = [image_sample(8, 1024) for _ in range(32)]
        assert disaggregated(cpu_nodes=16).keeps_up(batch, iteration_time=10.0)
        assert not disaggregated(cpu_nodes=1, cores_per_node=2).keeps_up(
            batch, iteration_time=1.0
        )

    def test_starvation_stalls_training(self):
        starved = disaggregated(cpu_nodes=1, cores_per_node=1)
        batch = [image_sample(16, 1024) for _ in range(8)]
        overhead = starved.exposed_overhead(batch, iteration_time=1.0)
        assert overhead > 1.0

    def test_figure17_ordering(self):
        d = disaggregated()
        c = colocated()
        for n, res in ((8, 512), (8, 1024), (16, 512), (16, 1024)):
            assert (
                d.exposed_overhead_for_images(n, res)
                < c.exposed_overhead_for_images(n, res) / 20
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            disaggregated(cpu_nodes=0)


class TestElasticity:
    def test_required_nodes_scale_with_load(self):
        cost = PreprocessCostModel()
        light = [image_sample(2, 512) for _ in range(16)]
        heavy = [image_sample(16, 1024) for _ in range(16)]
        assert required_cpu_nodes(
            cost, heavy, 1.0, cores_per_node=16
        ) > required_cpu_nodes(cost, light, 1.0, cores_per_node=16)

    def test_required_nodes_min_one(self):
        cost = PreprocessCostModel()
        assert required_cpu_nodes(cost, [image_sample(1, 64)], 100.0) == 1

    def test_invalid_iteration_time(self):
        with pytest.raises(ValueError):
            required_cpu_nodes(PreprocessCostModel(), [], 0.0)
