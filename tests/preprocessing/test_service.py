"""Producer/consumer queue simulation tests."""

import pytest

from repro.preprocessing.cost import PreprocessCostModel
from repro.preprocessing.service import PreprocessingService
from repro.preprocessing.transfer import TransferModel

from tests.preprocessing.test_cost import image_sample


def service(total_cores=512, queue_depth=2):
    return PreprocessingService(
        cost=PreprocessCostModel(),
        transfer=TransferModel(),
        total_cores=total_cores,
        queue_depth=queue_depth,
    )


def batches(n=6, images=8, resolution=512, per_batch=4):
    return [
        [image_sample(images, resolution) for _ in range(per_batch)]
        for _ in range(n)
    ]


class TestService:
    def test_fast_producers_no_stalls_after_warmup(self):
        feeds = service(total_cores=2048).simulate(
            batches(), gpu_iteration_time=5.0
        )
        assert all(f.stall < 0.05 for f in feeds[1:])

    def test_slow_producers_stall_training(self):
        feeds = service(total_cores=4).simulate(
            batches(images=16, resolution=1024), gpu_iteration_time=1.0
        )
        assert PreprocessingService.total_stall(feeds) > 1.0

    def test_transfer_always_charged(self):
        feeds = service().simulate(batches(), gpu_iteration_time=5.0)
        assert all(f.transfer > 0 for f in feeds)

    def test_feed_count_matches_batches(self):
        feeds = service().simulate(batches(n=9), gpu_iteration_time=2.0)
        assert len(feeds) == 9
        assert [f.iteration for f in feeds] == list(range(9))

    def test_mean_overhead_helper(self):
        feeds = service(total_cores=2048).simulate(
            batches(), gpu_iteration_time=5.0
        )
        mean = PreprocessingService.mean_overhead(feeds)
        assert 0 < mean < 0.5
        assert PreprocessingService.mean_overhead([]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            service(total_cores=0)
        with pytest.raises(ValueError):
            service(queue_depth=0)
        with pytest.raises(ValueError):
            service().simulate(batches(), gpu_iteration_time=0.0)

    def test_deeper_queue_absorbs_bursts(self):
        """A bursty heavy batch stalls less with more prefetch depth."""
        heavy_then_light = [
            [image_sample(32, 1024) for _ in range(4)],
            *batches(n=5, images=2, resolution=512),
        ]
        shallow = service(total_cores=64, queue_depth=1).simulate(
            heavy_then_light, gpu_iteration_time=3.0
        )
        deep = service(total_cores=64, queue_depth=4).simulate(
            heavy_then_light, gpu_iteration_time=3.0
        )
        assert PreprocessingService.total_stall(
            deep
        ) <= PreprocessingService.total_stall(shallow) + 1e-9
