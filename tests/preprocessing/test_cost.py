"""Preprocessing cost model tests."""

import pytest

from repro.data.sample import Subsequence, TrainingSample
from repro.preprocessing.cost import PreprocessCostModel


def image_sample(num_images=10, resolution=1024, text=256):
    tokens = (resolution // 16) ** 2
    pixels = resolution * resolution
    subs = [Subsequence("text", text)]
    subs += [
        Subsequence("image", tokens, raw_bytes=pixels // 2, pixels=pixels)
        for _ in range(num_images)
    ]
    return TrainingSample(sample_id=0, subsequences=tuple(subs))


class TestCostModel:
    def setup_method(self):
        self.cost = PreprocessCostModel()

    def test_paper_motivating_example_takes_seconds(self):
        """Section 2.3: ~256-word text + ten 1024x1024 images takes
        'several seconds' to preprocess."""
        seconds = self.cost.sample_cpu_seconds(image_sample())
        assert 1.0 < seconds < 10.0

    def test_text_only_is_cheap(self):
        text_sample = TrainingSample(
            sample_id=0, subsequences=(Subsequence("text", 8000),)
        )
        assert self.cost.sample_cpu_seconds(text_sample) < 0.01

    def test_cost_scales_with_resolution(self):
        low = self.cost.sample_cpu_seconds(image_sample(resolution=512))
        high = self.cost.sample_cpu_seconds(image_sample(resolution=1024))
        assert high > 3.5 * low

    def test_batch_sums(self):
        samples = [image_sample(), image_sample()]
        assert self.cost.batch_cpu_seconds(samples) == pytest.approx(
            2 * self.cost.sample_cpu_seconds(samples[0])
        )

    def test_images_helper_matches_sample_cost(self):
        direct = self.cost.images_cpu_seconds(10, 1024)
        pixels = 10 * 1024**2
        assert direct == pytest.approx(
            pixels * self.cost.image_ns_per_pixel * 1e-9
        )

    def test_images_helper_validation(self):
        with pytest.raises(ValueError):
            self.cost.images_cpu_seconds(-1, 512)
        with pytest.raises(ValueError):
            self.cost.images_cpu_seconds(1, 0)
