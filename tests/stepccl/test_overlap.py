"""StepCCL overlap simulation tests (Figure 20)."""

import pytest

from repro.stepccl.overlap import (
    OverlapConfig,
    overlapped_speedup,
    simulate_overlapped,
    simulate_sequential,
)


def config(**kwargs):
    defaults = dict(comm_time=1.0, compute_time=4.0, num_chunks=4,
                    chunk_overhead=0.0, remap_time=0.1)
    defaults.update(kwargs)
    return OverlapConfig(**defaults)


class TestSequential:
    def test_total_is_sum(self):
        timeline = simulate_sequential(config())
        assert timeline.total_time == pytest.approx(5.0)
        timeline.assert_valid()


class TestOverlapped:
    def test_hides_all_but_first_chunk(self):
        """StepCCL exposes only the first chunk's allgather plus the
        remap: 1/4 + 4 + 0.1."""
        timeline = simulate_overlapped(config())
        assert timeline.total_time == pytest.approx(0.25 + 4.0 + 0.1)
        timeline.assert_valid()

    def test_remap_overlappable_in_backward(self):
        fwd = simulate_overlapped(config(remap_overlappable=False))
        bwd = simulate_overlapped(config(remap_overlappable=True))
        assert bwd.total_time == pytest.approx(fwd.total_time - 0.1)

    def test_comm_bound_layer_cannot_fully_hide(self):
        """When communication exceeds computation, chunks stack up on
        the comm stream (the modular-design case of section A.1)."""
        timeline = simulate_overlapped(
            config(comm_time=8.0, compute_time=2.0)
        )
        # Lower bound: all comm must finish plus the final chunk GEMM.
        assert timeline.total_time >= 8.0 + 2.0 / 4

    def test_chunk_overhead_penalizes_over_chunking(self):
        fine = simulate_overlapped(
            config(num_chunks=64, chunk_overhead=20e-3)
        )
        coarse = simulate_overlapped(
            config(num_chunks=4, chunk_overhead=20e-3)
        )
        assert coarse.total_time < fine.total_time

    def test_single_chunk_equals_sequential_plus_remap(self):
        seq = simulate_sequential(config())
        ovl = simulate_overlapped(config(num_chunks=1))
        assert ovl.total_time == pytest.approx(seq.total_time + 0.1)


class TestSpeedup:
    def test_speedup_greater_than_one(self):
        assert overlapped_speedup(config()) > 1.0

    def test_speedup_grows_with_comm_fraction(self):
        light = overlapped_speedup(config(comm_time=0.2))
        heavy = overlapped_speedup(config(comm_time=2.0))
        assert heavy > light


class TestValidation:
    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            OverlapConfig(comm_time=-1.0, compute_time=1.0)

    def test_zero_chunks_rejected(self):
        with pytest.raises(ValueError):
            OverlapConfig(comm_time=1.0, compute_time=1.0, num_chunks=0)

    def test_timeline_catches_out_of_order_gemm(self):
        timeline = simulate_overlapped(config())
        # Corrupt: make the first GEMM start before its allgather ends.
        timeline.compute_ops[0] = (-1.0, 0.5)
        with pytest.raises(AssertionError):
            timeline.assert_valid()
