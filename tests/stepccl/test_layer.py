"""StepCCL layer-level tests (Figure 22's experiment)."""

import pytest

from repro.cluster.node import AMPERE_NODE
from repro.models.llm import LLAMA3_7B, LLAMA3_13B, LLAMA3_70B
from repro.stepccl.layer import StepCCLLayerModel, llm_stage_iteration_time


class TestLayerModel:
    def test_comm_zero_at_tp1(self):
        model = StepCCLLayerModel(llm=LLAMA3_7B, node=AMPERE_NODE, tp=1)
        assert model.layer_comm_time(8192) == 0.0

    def test_comm_positive_at_tp8(self):
        model = StepCCLLayerModel(llm=LLAMA3_7B, node=AMPERE_NODE, tp=8)
        assert model.layer_comm_time(8192) > 0.0

    def test_backward_costs_double(self):
        model = StepCCLLayerModel(llm=LLAMA3_7B, node=AMPERE_NODE, tp=8)
        fwd = model.layer_compute_time(8192, "fwd")
        bwd = model.layer_compute_time(8192, "bwd")
        assert bwd == pytest.approx(2 * fwd, rel=0.05)

    def test_stepccl_layer_faster(self):
        model = StepCCLLayerModel(llm=LLAMA3_7B, node=AMPERE_NODE, tp=8)
        assert model.layer_time(8192, "fwd", stepccl=True) < model.layer_time(
            8192, "fwd", stepccl=False
        )

    def test_invalid_tp(self):
        with pytest.raises(ValueError):
            StepCCLLayerModel(llm=LLAMA3_7B, node=AMPERE_NODE, tp=0)


class TestFigure22:
    @pytest.mark.parametrize("llm", [LLAMA3_7B, LLAMA3_13B, LLAMA3_70B])
    @pytest.mark.parametrize("tp", [4, 8])
    def test_stepccl_always_wins(self, llm, tp):
        base = llm_stage_iteration_time(llm, AMPERE_NODE, tp, stepccl=False)
        fast = llm_stage_iteration_time(llm, AMPERE_NODE, tp, stepccl=True)
        assert fast < base

    @pytest.mark.parametrize("llm", [LLAMA3_7B, LLAMA3_13B, LLAMA3_70B])
    def test_gain_larger_at_tp8_than_tp4(self, llm):
        """The paper: 1.1-1.12x at TP=4 vs 1.15-1.17x at TP=8 — gains
        grow with TP because communication grows relative to compute."""

        def gain(tp):
            base = llm_stage_iteration_time(llm, AMPERE_NODE, tp, False)
            fast = llm_stage_iteration_time(llm, AMPERE_NODE, tp, True)
            return base / fast

        assert gain(8) > gain(4) > 1.0

    @pytest.mark.parametrize("tp,lo,hi", [(4, 1.02, 1.15), (8, 1.05, 1.30)])
    def test_gains_in_paper_band(self, tp, lo, hi):
        for llm in (LLAMA3_7B, LLAMA3_13B, LLAMA3_70B):
            base = llm_stage_iteration_time(llm, AMPERE_NODE, tp, False)
            fast = llm_stage_iteration_time(llm, AMPERE_NODE, tp, True)
            assert lo < base / fast < hi

    def test_bigger_model_longer_iteration(self):
        t7 = llm_stage_iteration_time(LLAMA3_7B, AMPERE_NODE, 8, True)
        t70 = llm_stage_iteration_time(LLAMA3_70B, AMPERE_NODE, 8, True)
        assert t70 > 2 * t7
