"""Property-based tests for the StepCCL overlap simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.stepccl.overlap import (
    OverlapConfig,
    simulate_overlapped,
    simulate_sequential,
)


@st.composite
def overlap_configs(draw):
    return OverlapConfig(
        comm_time=draw(st.floats(min_value=0.0, max_value=10.0,
                                 allow_nan=False)),
        compute_time=draw(st.floats(min_value=0.01, max_value=10.0,
                                    allow_nan=False)),
        num_chunks=draw(st.integers(min_value=1, max_value=32)),
        chunk_overhead=draw(st.floats(min_value=0.0, max_value=0.01,
                                      allow_nan=False)),
        remap_time=draw(st.floats(min_value=0.0, max_value=0.5,
                                  allow_nan=False)),
        remap_overlappable=draw(st.booleans()),
    )


@settings(max_examples=80, deadline=None)
@given(overlap_configs())
def test_timelines_always_physical(config):
    """Both schedules produce stream-consistent timelines."""
    simulate_sequential(config).assert_valid()
    simulate_overlapped(config).assert_valid()


@settings(max_examples=80, deadline=None)
@given(overlap_configs())
def test_overlap_lower_bounds(config):
    """The overlapped schedule can never beat the physical floor: all
    communication must flow and all computation must execute."""
    timeline = simulate_overlapped(config)
    n = config.num_chunks
    comm_floor = config.comm_time + n * config.chunk_overhead
    compute_floor = config.compute_time + n * config.chunk_overhead
    assert timeline.total_time >= comm_floor - 1e-9
    assert timeline.total_time >= compute_floor - 1e-9


@settings(max_examples=60, deadline=None)
@given(overlap_configs())
def test_overlap_never_worse_than_serializing_chunks(config):
    """StepCCL is at most the fully serialized chunked execution."""
    timeline = simulate_overlapped(config)
    n = config.num_chunks
    serialized = (
        config.comm_time
        + config.compute_time
        + 2 * n * config.chunk_overhead
        + (0.0 if config.remap_overlappable else config.remap_time)
    )
    assert timeline.total_time <= serialized + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
)
def test_more_chunks_monotone_without_overhead(comm, compute):
    """With zero chunk overhead and remap, more chunks never hurt."""
    times = [
        simulate_overlapped(
            OverlapConfig(
                comm_time=comm,
                compute_time=compute,
                num_chunks=n,
                chunk_overhead=0.0,
                remap_time=0.0,
            )
        ).total_time
        for n in (1, 2, 4, 8, 16)
    ]
    for earlier, later in zip(times, times[1:]):
        assert later <= earlier + 1e-9
