"""Visualization helper tests."""

import pytest

from repro.pipeline.schedules import ScheduleKind
from repro.pipeline.simulator import PipelineSimulator
from repro.viz import (
    bar_chart,
    grouped_bar_chart,
    stage_utilization_chart,
    utilization_timeline,
)


@pytest.fixture(scope="module")
def trace():
    return PipelineSimulator(3, 6, ScheduleKind.ONE_F_ONE_B).run_uniform(
        1.0, 2.0
    )


class TestBarChart:
    def test_scales_to_peak(self):
        art = bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = art.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_title_and_unit(self):
        art = bar_chart({"x": 1.0}, title="T", unit="s")
        assert art.startswith("T")
        assert "1s" in art

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"a": 0.0})


class TestGroupedBarChart:
    def test_structure(self):
        art = grouped_bar_chart(
            {
                "mllm-9b": {"disttrain": 46.0, "megatron": 15.0},
                "mllm-72b": {"disttrain": 44.0, "megatron": 35.0},
            },
            title="MFU",
        )
        assert "mllm-9b:" in art and "mllm-72b:" in art
        assert art.count("disttrain") == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            grouped_bar_chart({})


class TestTraceCharts:
    def test_stage_utilization(self, trace):
        art = stage_utilization_chart(trace)
        lines = art.splitlines()
        assert lines[0] == "stage utilization:"
        assert len(lines) == 4  # title + one row per stage

    def test_timeline_width(self, trace):
        art = utilization_timeline(trace, 0, bins=40)
        assert art.startswith("s0 |")
        assert len(art) == len("s0 |") + 40 + 1

    def test_timeline_last_stage_mostly_busy(self, trace):
        # The last stage of a uniform 1F1B runs nearly continuously.
        art = utilization_timeline(trace, 2, bins=30)
        assert art.count("#") > 15

    def test_empty_trace(self):
        from repro.pipeline.trace import PipelineTrace

        empty = PipelineTrace(1, 0, 1, [])
        assert utilization_timeline(empty, 0) == "(empty trace)"
