"""Module cost model tests (the C(TP) functions)."""

import pytest

from repro.cluster.node import AMPERE_NODE
from repro.models.base import ModuleWorkload
from repro.models.llm import LLAMA3_7B, LLAMA3_70B
from repro.models.vit import VIT_HUGE
from repro.models.diffusion import STABLE_DIFFUSION_2_1
from repro.timing.costmodel import ModuleCostModel, tp_comm_bytes_forward

W_LLM = ModuleWorkload(samples=1)
W_IMG = ModuleWorkload(samples=1, image_tokens=4096, images=4)


class TestForwardBackward:
    def test_backward_roughly_2x_forward(self):
        cm = ModuleCostModel(LLAMA3_7B, AMPERE_NODE)
        fwd = cm.forward_time(W_LLM, tp=1)
        bwd = cm.backward_time(W_LLM, tp=1)
        assert 1.8 < bwd / fwd < 2.2

    def test_dx_only_backward_cheaper(self):
        cm = ModuleCostModel(LLAMA3_7B, AMPERE_NODE)
        full = cm.backward_time(W_LLM, tp=1, weight_grads=True)
        relay = cm.backward_time(W_LLM, tp=1, weight_grads=False)
        assert relay < 0.6 * full

    def test_fwd_bwd_composition(self):
        cm = ModuleCostModel(LLAMA3_7B, AMPERE_NODE)
        combined = cm.fwd_bwd_time(W_LLM, tp=2)
        assert combined == pytest.approx(
            cm.forward_time(W_LLM, 2) + cm.backward_time(W_LLM, 2)
        )

    def test_no_backward(self):
        cm = ModuleCostModel(LLAMA3_7B, AMPERE_NODE)
        assert cm.fwd_bwd_time(W_LLM, tp=2, backward=False) == pytest.approx(
            cm.forward_time(W_LLM, 2)
        )

    def test_larger_model_slower(self):
        small = ModuleCostModel(LLAMA3_7B, AMPERE_NODE).forward_time(W_LLM, 8)
        large = ModuleCostModel(LLAMA3_70B, AMPERE_NODE).forward_time(W_LLM, 8)
        assert large > 5 * small


class TestTPBehaviour:
    def test_tp_speeds_up_compute(self):
        cm = ModuleCostModel(LLAMA3_70B, AMPERE_NODE, tp_overlap_fraction=1.0)
        assert cm.forward_time(W_LLM, 8) < cm.forward_time(W_LLM, 1) / 4

    def test_overlap_reduces_time(self):
        plain = ModuleCostModel(LLAMA3_70B, AMPERE_NODE, tp_overlap_fraction=0.0)
        overlapped = ModuleCostModel(
            LLAMA3_70B, AMPERE_NODE, tp_overlap_fraction=0.9
        )
        assert overlapped.forward_time(W_LLM, 8) < plain.forward_time(W_LLM, 8)

    def test_overlap_fraction_validated(self):
        with pytest.raises(ValueError):
            ModuleCostModel(LLAMA3_7B, AMPERE_NODE, tp_overlap_fraction=1.5)

    def test_tp1_has_no_comm(self):
        cm = ModuleCostModel(LLAMA3_7B, AMPERE_NODE)
        assert cm.tp_comm_time(W_LLM, 1) == 0.0
        assert cm.tp_comm_time(W_LLM, 8) > 0.0


class TestCommVolumes:
    def test_llm_volume_formula(self):
        # 2 allreduces/layer of tokens*hidden bf16.
        expected = 32 * 2.0 * 8192 * 4096 * 2.0
        assert tp_comm_bytes_forward(LLAMA3_7B, W_LLM) == pytest.approx(expected)

    def test_vit_scales_with_image_tokens(self):
        w2 = ModuleWorkload(samples=1, image_tokens=8192, images=8)
        assert tp_comm_bytes_forward(VIT_HUGE, w2) == pytest.approx(
            2 * tp_comm_bytes_forward(VIT_HUGE, W_IMG)
        )

    def test_diffusion_nonzero(self):
        assert tp_comm_bytes_forward(STABLE_DIFFUSION_2_1, W_IMG) > 0

    def test_diffusion_empty_workload(self):
        assert (
            tp_comm_bytes_forward(STABLE_DIFFUSION_2_1, ModuleWorkload())
            == 0.0
        )


class TestDPSync:
    def test_zero_for_dp1(self):
        cm = ModuleCostModel(LLAMA3_7B, AMPERE_NODE)
        assert cm.dp_gradient_sync_time(tp=8, pp=1, dp=1) == 0.0

    def test_sharding_reduces_volume(self):
        cm = ModuleCostModel(LLAMA3_70B, AMPERE_NODE)
        wide = cm.dp_gradient_sync_time(tp=1, pp=1, dp=8)
        sharded = cm.dp_gradient_sync_time(tp=8, pp=10, dp=8)
        assert sharded < wide / 50
