"""Collective communication cost model tests."""

import pytest

from repro.cluster.interconnect import NVLINK_300, ROCE_4X200, LinkSpec
from repro.timing.collectives import (
    CollectiveModel,
    p2p_time,
    ring_allgather_time,
    ring_allreduce_time,
    ring_reduce_scatter_time,
)

LINK = LinkSpec(name="test", bandwidth=100e9, latency=1e-6, efficiency=1.0)


class TestRingFormulas:
    def test_single_rank_free(self):
        assert ring_allreduce_time(1e9, 1, LINK) == 0.0
        assert ring_allgather_time(1e9, 1, LINK) == 0.0

    def test_zero_volume_free(self):
        assert ring_allreduce_time(0, 8, LINK) == 0.0

    def test_allreduce_moves_2x_allgather(self):
        # Ignoring latency, allreduce moves twice the data of allgather.
        big = 1e12
        ar = ring_allreduce_time(big, 8, LINK)
        ag = ring_allgather_time(big, 8, LINK)
        assert ar / ag == pytest.approx(2.0, rel=0.01)

    def test_allreduce_analytic(self):
        n, volume = 4, 100e9
        expected = 2 * (n - 1) / n * volume / 100e9 + 2 * (n - 1) * 1e-6
        assert ring_allreduce_time(volume, n, LINK) == pytest.approx(expected)

    def test_reduce_scatter_equals_allgather(self):
        assert ring_reduce_scatter_time(5e9, 8, LINK) == pytest.approx(
            ring_allgather_time(5e9, 8, LINK)
        )

    def test_latency_dominates_small_messages(self):
        tiny = ring_allreduce_time(8, 8, LINK)
        assert tiny >= 2 * 7 * LINK.latency

    def test_validation(self):
        with pytest.raises(ValueError):
            ring_allreduce_time(-1, 8, LINK)
        with pytest.raises(ValueError):
            ring_allreduce_time(1, 0, LINK)

    def test_p2p(self):
        assert p2p_time(0, LINK) == 0.0
        assert p2p_time(100e9, LINK) == pytest.approx(1.0 + 1e-6)


class TestCollectiveModel:
    def setup_method(self):
        self.model = CollectiveModel(
            intra_link=NVLINK_300, inter_link=ROCE_4X200
        )

    def test_tp_on_nvlink_faster_than_dp_on_roce(self):
        volume = 1e9
        assert self.model.tp_allreduce(volume, 8) < self.model.dp_allreduce(
            volume, 8
        )

    def test_group_size_scaling(self):
        v = 10e9
        assert self.model.dp_allreduce(v, 16) > self.model.dp_allreduce(v, 2)

    def test_pp_send(self):
        assert self.model.pp_send(1e6) > 0
