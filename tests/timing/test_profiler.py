"""Profiler (interpolated time functions) tests."""

import pytest

from repro.cluster.node import AMPERE_NODE
from repro.models.base import ModuleWorkload
from repro.models.llm import LLAMA3_7B
from repro.models.vit import VIT_HUGE
from repro.timing.costmodel import ModuleCostModel
from repro.timing.profiler import PerformanceProfiler, ProfileTable

import numpy as np


def build_profiler(noise=0.0):
    cost_models = {
        "llm": ModuleCostModel(LLAMA3_7B, AMPERE_NODE),
        "encoder": ModuleCostModel(VIT_HUGE, AMPERE_NODE),
    }
    profiler = PerformanceProfiler(
        cost_models=cost_models, tp_candidates=(1, 8), noise_std=noise
    )
    profiler.profile(max_units={"llm": 8, "encoder": 32768})
    return profiler, cost_models


class TestProfileTable:
    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            ProfileTable(units=np.array([1.0]), seconds=np.array([1.0]))

    def test_sorts_inputs(self):
        table = ProfileTable(
            units=np.array([4.0, 1.0]), seconds=np.array([8.0, 2.0])
        )
        assert table.interpolate(2.0) == pytest.approx(4.0)

    def test_extrapolation_clamps_at_zero(self):
        table = ProfileTable(
            units=np.array([1.0, 2.0]), seconds=np.array([2.0, 1.0])
        )
        assert table.interpolate(10.0) == 0.0


class TestProfiler:
    def test_interpolation_matches_cost_model(self):
        profiler, cost_models = build_profiler()
        w = ModuleWorkload(samples=3)
        estimated = profiler.estimate("llm", w, 8, "fwd")
        direct = cost_models["llm"].forward_time(w, 8)
        assert estimated == pytest.approx(direct, rel=0.05)

    def test_encoder_interpolation(self):
        profiler, cost_models = build_profiler()
        w = ModuleWorkload(samples=1, image_tokens=10000, images=8)
        estimated = profiler.estimate("encoder", w, 1, "fwd")
        direct = cost_models["encoder"].forward_time(w, 1)
        assert estimated == pytest.approx(direct, rel=0.1)

    def test_unprofiled_tp_raises(self):
        profiler, _ = build_profiler()
        with pytest.raises(KeyError):
            profiler.estimate("llm", ModuleWorkload(samples=1), 4)

    def test_invalid_pass_name(self):
        profiler, _ = build_profiler()
        with pytest.raises(ValueError):
            profiler.estimate("llm", ModuleWorkload(samples=1), 8, "sideways")

    def test_fwd_bwd_with_frozen_flags(self):
        profiler, _ = build_profiler()
        w = ModuleWorkload(samples=2)
        full = profiler.estimate_fwd_bwd("llm", w, 8)
        relay = profiler.estimate_fwd_bwd("llm", w, 8, weight_grads=False)
        fwd_only = profiler.estimate_fwd_bwd("llm", w, 8, backward=False)
        assert fwd_only < relay < full

    def test_noise_reproducible(self):
        p1, _ = build_profiler(noise=0.05)
        p2, _ = build_profiler(noise=0.05)
        w = ModuleWorkload(samples=2)
        assert p1.estimate("llm", w, 8) == p2.estimate("llm", w, 8)

    def test_missing_max_units_raises(self):
        cost_models = {"llm": ModuleCostModel(LLAMA3_7B, AMPERE_NODE)}
        profiler = PerformanceProfiler(cost_models=cost_models)
        with pytest.raises(KeyError):
            profiler.profile(max_units={})

    def test_is_profiled(self):
        cost_models = {"llm": ModuleCostModel(LLAMA3_7B, AMPERE_NODE)}
        profiler = PerformanceProfiler(cost_models=cost_models)
        assert not profiler.is_profiled()
        profiler.profile(max_units={"llm": 4})
        assert profiler.is_profiled()
