"""Roofline model tests."""

import pytest

from repro.cluster.gpu import AMPERE_A100_80G, L20
from repro.models.base import ModuleKind
from repro.timing.roofline import DEFAULT_EFFICIENCY, EfficiencyModel, kernel_time


class TestEfficiency:
    def test_backbone_most_efficient(self):
        e = DEFAULT_EFFICIENCY
        assert (
            e.efficiency(ModuleKind.BACKBONE)
            > e.efficiency(ModuleKind.ENCODER)
            > e.efficiency(ModuleKind.GENERATOR)
        )

    def test_tp_degrades_efficiency(self):
        e = DEFAULT_EFFICIENCY
        for kind in ModuleKind:
            assert e.efficiency(kind, 8) < e.efficiency(kind, 1)

    def test_generator_suffers_most_from_tp(self):
        e = DEFAULT_EFFICIENCY
        drop = lambda kind: e.efficiency(kind, 8) / e.efficiency(kind, 1)
        assert drop(ModuleKind.GENERATOR) < drop(ModuleKind.ENCODER)
        assert drop(ModuleKind.ENCODER) < drop(ModuleKind.BACKBONE)

    def test_efficiency_floor(self):
        e = EfficiencyModel(
            tp_penalty_per_doubling={k: 0.5 for k in ModuleKind}
        )
        assert e.efficiency(ModuleKind.BACKBONE, 8) == pytest.approx(0.05)

    def test_invalid_tp(self):
        with pytest.raises(ValueError):
            DEFAULT_EFFICIENCY.efficiency(ModuleKind.BACKBONE, 0)


class TestKernelTime:
    def test_zero_flops_zero_time(self):
        assert kernel_time(0, AMPERE_A100_80G, ModuleKind.BACKBONE) == 0.0

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            kernel_time(-1, AMPERE_A100_80G, ModuleKind.BACKBONE)

    def test_tp_splits_work(self):
        t1 = kernel_time(1e15, AMPERE_A100_80G, ModuleKind.BACKBONE, tp=1)
        t8 = kernel_time(1e15, AMPERE_A100_80G, ModuleKind.BACKBONE, tp=8)
        # 8-way split is nearly 8x faster, minus the efficiency penalty.
        assert 6.0 < t1 / t8 < 8.0

    def test_launch_overhead_scales_with_layers(self):
        shallow = kernel_time(
            1e12, AMPERE_A100_80G, ModuleKind.BACKBONE, num_layers=1
        )
        deep = kernel_time(
            1e12, AMPERE_A100_80G, ModuleKind.BACKBONE, num_layers=100
        )
        assert deep > shallow

    def test_slower_gpu_slower_kernels(self):
        fast = kernel_time(1e14, AMPERE_A100_80G, ModuleKind.BACKBONE)
        slow = kernel_time(1e14, L20, ModuleKind.BACKBONE)
        assert slow > 2 * fast

    def test_achievable_fraction_realistic(self):
        """1e15 FLOPs at bf16 peak should take ~5s at ~66% efficiency."""
        t = kernel_time(1e15, AMPERE_A100_80G, ModuleKind.BACKBONE)
        implied_eff = 1e15 / (t * 312e12)
        assert 0.55 < implied_eff < 0.70
