"""Communication broker tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.cluster.interconnect import ROCE_4X200
from repro.models.llm import LLAMA3_7B
from repro.models.vit import VIT_HUGE
from repro.parallelism.broker import (
    broker_transfer_time,
    plan_brokers,
    route_microbatch,
)
from repro.parallelism.plan import ParallelismPlan
from repro.parallelism.unit import ParallelismUnit


def units(dp_up, dp_down):
    up = ParallelismUnit(
        "encoder", VIT_HUGE, ParallelismPlan(tp=1, pp=1, dp=dp_up), 0
    )
    down = ParallelismUnit(
        "llm",
        LLAMA3_7B,
        ParallelismPlan(tp=2, pp=1, dp=dp_down),
        gpu_offset=dp_up,
    )
    return up, down


class TestBrokerPlanning:
    @pytest.mark.parametrize("dp_up,dp_down", [(6, 4), (8, 8), (3, 5), (1, 7)])
    def test_broker_count_is_gcd(self, dp_up, dp_down):
        brokers = plan_brokers(*units(dp_up, dp_down))
        assert len(brokers) == math.gcd(dp_up, dp_down)

    def test_brokers_cover_dp_spaces(self):
        brokers = plan_brokers(*units(6, 4))
        up_covered = [i for b in brokers for i in b.upstream_dp_indices]
        down_covered = [i for b in brokers for i in b.downstream_dp_indices]
        assert sorted(up_covered) == list(range(6))
        assert sorted(down_covered) == list(range(4))

    def test_hosts_on_boundary_stages(self):
        up, down = units(4, 4)
        brokers = plan_brokers(up, down)
        boundary = set(up.last_stage_ranks()) | set(down.first_stage_ranks())
        for broker in brokers:
            assert broker.host_rank in boundary

    def test_fan_properties(self):
        brokers = plan_brokers(*units(6, 4))
        for broker in brokers:
            assert broker.fan_in == 3
            assert broker.fan_out == 2


class TestTransferTime:
    def test_more_brokers_faster(self):
        few = plan_brokers(*units(1, 7))
        many = plan_brokers(*units(8, 8))
        volume = 1e9
        assert broker_transfer_time(
            many, volume, ROCE_4X200
        ) < broker_transfer_time(few, volume, ROCE_4X200)

    def test_async_faster_than_sync(self):
        brokers = plan_brokers(*units(4, 4))
        v = 1e8
        fast = broker_transfer_time(brokers, v, ROCE_4X200, asynchronous=True)
        slow = broker_transfer_time(brokers, v, ROCE_4X200, asynchronous=False)
        assert fast < slow

    def test_validation(self):
        with pytest.raises(ValueError):
            broker_transfer_time([], 1.0, ROCE_4X200)
        brokers = plan_brokers(*units(2, 2))
        with pytest.raises(ValueError):
            broker_transfer_time(brokers, -1.0, ROCE_4X200)


class TestRouting:
    def test_order_preserved(self):
        ids = list(range(12))
        shards = route_microbatch(ids, dp_up=3, dp_down=4)
        flattened = [i for shard in shards for i in shard]
        assert flattened == ids  # concentrate/scatter preserves order

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=5),
    )
    def test_roundtrip_property(self, dp_up, dp_down, scale):
        ids = list(range(dp_up * dp_down * scale))
        shards = route_microbatch(ids, dp_up, dp_down)
        assert len(shards) == dp_down
        assert [i for s in shards for i in s] == ids

    def test_uneven_rejected(self):
        with pytest.raises(ValueError):
            route_microbatch([1, 2, 3], dp_up=1, dp_down=2)
