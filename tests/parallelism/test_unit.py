"""ParallelismUnit rank arithmetic and communication groups."""

import pytest
from hypothesis import given, strategies as st

from repro.models.llm import LLAMA3_7B
from repro.parallelism.plan import ParallelismPlan
from repro.parallelism.unit import CommunicationGroup, ParallelismUnit


def make_unit(tp=2, pp=3, dp=2, offset=16):
    return ParallelismUnit(
        "llm",
        LLAMA3_7B,
        ParallelismPlan(tp=tp, pp=pp, dp=dp),
        gpu_offset=offset,
    )


class TestRankArithmetic:
    def test_global_ranks(self):
        unit = make_unit()
        assert list(unit.global_ranks) == list(range(16, 28))

    def test_coords_roundtrip(self):
        unit = make_unit()
        for local in range(unit.num_gpus):
            pp, dp, tp = unit.coords(local)
            assert unit.rank_of(pp, dp, tp) == unit.gpu_offset + local

    def test_tp_fastest_varying(self):
        unit = make_unit()
        assert unit.coords(0) == (0, 0, 0)
        assert unit.coords(1) == (0, 0, 1)
        assert unit.coords(2) == (0, 1, 0)

    def test_local_rank_bounds(self):
        unit = make_unit()
        with pytest.raises(ValueError):
            unit.local_rank(15)
        with pytest.raises(ValueError):
            unit.coords(unit.num_gpus)

    def test_rank_of_bounds(self):
        unit = make_unit()
        with pytest.raises(ValueError):
            unit.rank_of(3, 0, 0)

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
    )
    def test_coords_bijective(self, tp, pp, dp):
        unit = ParallelismUnit(
            "u", LLAMA3_7B, ParallelismPlan(tp=tp, pp=pp, dp=dp)
        )
        seen = set()
        for local in range(unit.num_gpus):
            seen.add(unit.coords(local))
        assert len(seen) == unit.num_gpus


class TestGroups:
    def test_group_counts(self):
        unit = make_unit(tp=2, pp=3, dp=2)
        assert len(unit.tp_groups()) == 6  # pp * dp
        assert len(unit.dp_groups()) == 6  # pp * tp
        assert len(unit.pp_groups()) == 4  # dp * tp

    def test_tp_groups_contiguous(self):
        unit = make_unit(tp=4, pp=1, dp=2, offset=0)
        for group in unit.tp_groups():
            ranks = list(group.ranks)
            assert ranks == list(range(ranks[0], ranks[0] + 4))

    def test_groups_partition_ranks(self):
        unit = make_unit()
        for getter in (unit.tp_groups, unit.dp_groups, unit.pp_groups):
            covered = [r for g in getter() for r in g.ranks]
            assert sorted(covered) == list(unit.global_ranks)

    def test_group_kind_validation(self):
        with pytest.raises(ValueError):
            CommunicationGroup("bogus", (1, 2))
        with pytest.raises(ValueError):
            CommunicationGroup("tp", (1, 1))

    def test_boundary_ranks(self):
        unit = make_unit(tp=2, pp=3, dp=2, offset=0)
        first = unit.first_stage_ranks()
        last = unit.last_stage_ranks()
        assert first == [0, 1, 2, 3]
        assert last == [8, 9, 10, 11]

    def test_describe(self):
        assert "llm" in make_unit().describe()
