"""ParallelismPlan tests."""

import pytest

from repro.parallelism.plan import ParallelismPlan


class TestConstruction:
    def test_num_gpus(self):
        plan = ParallelismPlan(tp=4, pp=3, dp=2)
        assert plan.num_gpus == 24
        assert plan.model_parallel_size == 12

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ParallelismPlan(tp=0)

    def test_rejects_non_integer(self):
        with pytest.raises(ValueError):
            ParallelismPlan(tp=2.5)  # type: ignore[arg-type]

    def test_sp_must_equal_tp(self):
        with pytest.raises(ValueError):
            ParallelismPlan(tp=4, sp=2)
        ParallelismPlan(tp=4, sp=4)  # ok

    def test_with_update(self):
        plan = ParallelismPlan(tp=2).with_(dp=8)
        assert plan.dp == 8 and plan.tp == 2


class TestValidation:
    def test_layers_must_cover_chunks(self):
        plan = ParallelismPlan(pp=8, vpp=2)
        with pytest.raises(ValueError):
            plan.validate_against(num_layers=10, global_batch_size=16)
        plan.validate_against(num_layers=16, global_batch_size=16)

    def test_batch_divisibility(self):
        plan = ParallelismPlan(dp=3, microbatch_size=2)
        with pytest.raises(ValueError):
            plan.validate_against(num_layers=8, global_batch_size=16)
        plan.validate_against(num_layers=8, global_batch_size=18)

    def test_num_microbatches(self):
        plan = ParallelismPlan(dp=4, microbatch_size=2)
        assert plan.num_microbatches(64) == 8

    def test_num_microbatches_indivisible(self):
        with pytest.raises(ValueError):
            ParallelismPlan(dp=3).num_microbatches(16)


class TestDescribe:
    def test_basic(self):
        text = ParallelismPlan(tp=8, pp=10, dp=12).describe()
        assert "TP=8" in text and "PP=10" in text and "960 GPUs" in text

    def test_optional_fields_shown_when_set(self):
        text = ParallelismPlan(tp=4, sp=4, vpp=2).describe()
        assert "SP=4" in text and "VPP=2" in text
        assert "EP" not in text
