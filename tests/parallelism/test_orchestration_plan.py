"""ModelOrchestrationPlan tests."""

import pytest

from repro.cluster.cluster import make_cluster
from repro.models.mllm import MLLM_9B
from repro.parallelism.orchestration_plan import ModelOrchestrationPlan
from repro.parallelism.plan import ParallelismPlan


def make_plan(enc_dp=4, llm=(2, 2, 4), gen_dp=4, gpus=48):
    tp, pp, dp = llm
    return ModelOrchestrationPlan(
        mllm=MLLM_9B,
        cluster=make_cluster(gpus),
        encoder_plan=ParallelismPlan(tp=1, pp=1, dp=enc_dp),
        llm_plan=ParallelismPlan(tp=tp, pp=pp, dp=dp),
        generator_plan=ParallelismPlan(tp=1, pp=1, dp=gen_dp),
    )


class TestPlan:
    def test_num_gpus(self):
        plan = make_plan()
        assert plan.num_gpus == 4 + 16 + 4

    def test_rejects_oversubscription(self):
        with pytest.raises(ValueError):
            make_plan(enc_dp=40, gpus=48)

    def test_total_stages(self):
        assert make_plan().total_pipeline_stages == 4

    def test_units_contiguous(self):
        units = make_plan().build_units()
        assert units["encoder"].gpu_offset == 0
        assert units["llm"].gpu_offset == 4
        assert units["generator"].gpu_offset == 20

    def test_brokers_built_for_both_boundaries(self):
        brokers = make_plan().build_brokers()
        assert set(brokers) == {"encoder->llm", "llm->generator"}
        assert len(brokers["encoder->llm"]) == 4  # gcd(4, 4)

    def test_validate_batch(self):
        plan = make_plan()
        plan.validate(global_batch_size=16)
        with pytest.raises(ValueError):
            plan.validate(global_batch_size=15)

    def test_num_microbatches(self):
        assert make_plan().num_microbatches(16) == 4

    def test_describe(self):
        text = make_plan().describe()
        assert "encoder" in text and "llm" in text and "generator" in text
