"""Pipeline trace analytics tests."""

import pytest

from repro.pipeline.analysis import (
    critical_path,
    first_stage_intervals,
    microbatch_latencies,
    summarize,
)
from repro.pipeline.schedules import ScheduleKind
from repro.pipeline.simulator import PipelineSimulator


@pytest.fixture(scope="module")
def trace():
    return PipelineSimulator(4, 6, ScheduleKind.ONE_F_ONE_B).run_uniform(
        1.0, 2.0
    )


class TestMicrobatchLatencies:
    def test_one_entry_per_microbatch(self, trace):
        latencies = microbatch_latencies(trace)
        assert [l.microbatch for l in latencies] == list(range(6))

    def test_first_microbatch_forward_latency(self, trace):
        # Microbatch 0 streams through 4 stages back-to-back: 4 s.
        first = microbatch_latencies(trace)[0]
        assert first.forward_latency == pytest.approx(4.0)
        assert first.forward_start == 0.0

    def test_round_trip_bounds(self, trace):
        for latency in microbatch_latencies(trace):
            # Round trip at least fwd+bwd through all stages.
            assert latency.total_latency >= 4 * 3.0 - 1e-9
            assert latency.backward_end <= trace.makespan + 1e-9

    def test_later_microbatches_start_later(self, trace):
        starts = [l.forward_start for l in microbatch_latencies(trace)]
        assert starts == sorted(starts)


class TestCriticalPath:
    def test_chain_is_contiguous(self, trace):
        path = critical_path(trace)
        assert path
        for prev, nxt in zip(path, path[1:]):
            assert nxt.start == pytest.approx(prev.end)

    def test_ends_at_makespan(self, trace):
        path = critical_path(trace)
        assert path[-1].end == pytest.approx(trace.makespan)

    def test_uniform_pipeline_path_spans_most_of_iteration(self, trace):
        """With uniform times 1F1B keeps the critical path busy from the
        first op to the last."""
        path = critical_path(trace)
        covered = path[-1].end - path[0].start
        assert covered == pytest.approx(trace.makespan)

    def test_empty_trace(self):
        from repro.pipeline.trace import PipelineTrace

        assert critical_path(PipelineTrace(1, 0, 1, [])) == []


class TestFirstStageIntervals:
    def test_interval_count(self, trace):
        # One window before each of the 6 backward passes at stage 0.
        intervals = first_stage_intervals(trace)
        assert len(intervals) == 6

    def test_last_intervals_unfilled(self, trace):
        """Figure 12: the final p-1 intervals have no forwards left to
        fill them."""
        intervals = first_stage_intervals(trace)
        tail = intervals[-(trace.num_stages - 1):]
        assert all(end > start + 1e-9 for start, end in tail)

    def test_total_matches_trace_accounting(self, trace):
        intervals = first_stage_intervals(trace)
        total_idle = sum(end - start for start, end in intervals)
        assert total_idle == pytest.approx(
            trace.first_stage_unfilled_time(), rel=0.01
        )


class TestSummary:
    def test_keys_and_consistency(self, trace):
        summary = summarize(trace)
        assert summary["makespan"] == pytest.approx(trace.makespan)
        assert 0 <= summary["bubble_fraction"] < 1
        assert summary["mean_forward_latency"] >= 4.0 - 1e-9
