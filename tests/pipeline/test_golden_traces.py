"""Golden-trace snapshots: the kernel vs committed known-good traces.

Each fixture under ``tests/pipeline/golden/`` stores one canonical
schedule's full trace with hex-serialized floats. The comparison is
bit-exact — a kernel change that moves any start/end time by one ULP
fails here and must either be fixed or explicitly re-blessed with::

    PYTHONPATH=src python -m tests.pipeline.golden.regen
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.pipeline.ops import Direction, PipelineOp
from repro.pipeline.schedules import ScheduleKind
from repro.pipeline.simulator import PipelineSimulator, StageWork

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
FIXTURES = sorted(GOLDEN_DIR.glob("*.json"))


def load_tables(fixture):
    fwd = np.array(
        [[float.fromhex(v) for v in row] for row in fixture["fwd"]]
    )
    bwd = np.array(
        [[float.fromhex(v) for v in row] for row in fixture["bwd"]]
    )
    return fwd, bwd, float.fromhex(fixture["comm"])


def run_fixture(fixture):
    fwd, bwd, comm = load_tables(fixture)
    sim = PipelineSimulator(
        fixture["num_stages"],
        fixture["num_microbatches"],
        ScheduleKind(fixture["schedule"]),
        vpp=fixture["vpp"],
    )
    return sim.run(StageWork.from_tables(fwd, bwd, comm=comm))


def test_fixture_set_is_complete():
    """One fixture per schedule kind, plus heterogeneous/frozen cases."""
    assert FIXTURES, "no golden fixtures committed"
    kinds = {
        json.loads(path.read_text())["schedule"] for path in FIXTURES
    }
    assert kinds == {kind.value for kind in ScheduleKind}
    names = {path.stem for path in FIXTURES}
    assert "one_f_one_b_heterogeneous" in names
    assert "one_f_one_b_frozen_backwards" in names


@pytest.mark.parametrize(
    "path", FIXTURES, ids=[path.stem for path in FIXTURES]
)
def test_trace_matches_golden(path):
    fixture = json.loads(path.read_text())
    trace = run_fixture(fixture)
    assert trace.makespan == float.fromhex(fixture["makespan"])
    golden = fixture["records"]
    assert len(trace.records) == len(golden)
    for record, expected in zip(trace.records, golden):
        op = PipelineOp(
            stage=expected["stage"],
            microbatch=expected["microbatch"],
            direction=Direction(expected["direction"]),
            chunk=expected["chunk"],
        )
        assert record.op == op
        assert record.start == float.fromhex(expected["start"]), op
        assert record.end == float.fromhex(expected["end"]), op


@pytest.mark.parametrize(
    "path", FIXTURES, ids=[path.stem for path in FIXTURES]
)
def test_golden_traces_are_physical(path):
    """The committed snapshots themselves satisfy the invariants."""
    trace = run_fixture(json.loads(path.read_text()))
    trace.assert_valid()
