"""Pipeline schedule generator tests."""

import pytest

from repro.pipeline.ops import Direction
from repro.pipeline.schedules import (
    ScheduleKind,
    gpipe_order,
    interleaved_order,
    one_f_one_b_order,
    schedule_order,
)


def op_counts(order):
    fwd = sum(1 for ops in order.values() for op in ops if op.is_forward)
    bwd = sum(1 for ops in order.values() for op in ops if not op.is_forward)
    return fwd, bwd


class TestGPipe:
    def test_all_forwards_then_backwards(self):
        order = gpipe_order(3, 5)
        for ops in order.values():
            directions = [op.direction for op in ops]
            split = directions.index(Direction.BWD)
            assert all(d is Direction.FWD for d in directions[:split])
            assert all(d is Direction.BWD for d in directions[split:])

    def test_counts(self):
        order = gpipe_order(3, 5)
        assert op_counts(order) == (15, 15)


class TestOneFOneB:
    def test_warmup_depth(self):
        order = one_f_one_b_order(4, 8)
        for stage, ops in order.items():
            warmup = 0
            for op in ops:
                if not op.is_forward:
                    break
                warmup += 1
            # Stage s warms up with p-1-s forwards (plus its first steady F).
            assert warmup == (4 - stage - 1) + 1

    def test_counts(self):
        assert op_counts(one_f_one_b_order(4, 8)) == (32, 32)

    def test_last_stage_strictly_alternates(self):
        order = one_f_one_b_order(4, 6)
        directions = [op.direction for op in order[3]]
        for i in range(0, len(directions) - 1, 2):
            assert directions[i] is Direction.FWD
            assert directions[i + 1] is Direction.BWD

    def test_backwards_in_order(self):
        order = one_f_one_b_order(4, 8)
        for ops in order.values():
            bwd_mbs = [op.microbatch for op in ops if not op.is_forward]
            assert bwd_mbs == sorted(bwd_mbs)

    def test_fewer_microbatches_than_stages(self):
        order = one_f_one_b_order(8, 2)
        assert op_counts(order) == (16, 16)

    def test_validation(self):
        with pytest.raises(ValueError):
            one_f_one_b_order(0, 4)
        with pytest.raises(ValueError):
            one_f_one_b_order(4, 0)


class TestInterleaved:
    def test_requires_divisibility(self):
        with pytest.raises(ValueError):
            interleaved_order(4, 6, vpp=2)

    def test_vpp1_falls_back(self):
        a = interleaved_order(4, 8, vpp=1)
        b = one_f_one_b_order(4, 8)
        assert a == b

    def test_counts_scale_with_vpp(self):
        order = interleaved_order(4, 8, vpp=2)
        assert op_counts(order) == (64, 64)

    def test_chunks_in_range(self):
        order = interleaved_order(4, 8, vpp=3)
        for ops in order.values():
            assert all(0 <= op.chunk < 3 for op in ops)

    def test_every_mb_chunk_pair_present(self):
        order = interleaved_order(2, 4, vpp=2)
        for stage, ops in order.items():
            fwd = {(op.microbatch, op.chunk) for op in ops if op.is_forward}
            assert fwd == {(m, c) for m in range(4) for c in range(2)}


class TestDispatch:
    def test_schedule_order_dispatch(self):
        for kind in ScheduleKind:
            order = schedule_order(kind, 2, 4, vpp=2)
            assert set(order) == {0, 1}
