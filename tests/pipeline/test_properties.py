"""Property-based tests on pipeline schedules and simulation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.pipeline.schedules import ScheduleKind, schedule_order
from repro.pipeline.simulator import PipelineSimulator, StageWork


@st.composite
def pipeline_instances(draw):
    p = draw(st.integers(min_value=1, max_value=5))
    l = draw(st.integers(min_value=1, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    fwd = rng.uniform(0.1, 3.0, (p, l))
    bwd = rng.uniform(0.1, 5.0, (p, l))
    comm = draw(
        st.floats(min_value=0.0, max_value=0.5, allow_nan=False)
    )
    return p, l, fwd, bwd, comm


@settings(max_examples=40, deadline=None)
@given(pipeline_instances())
def test_random_1f1b_traces_are_physical(instance):
    p, l, fwd, bwd, comm = instance
    trace = PipelineSimulator(p, l, ScheduleKind.ONE_F_ONE_B).run(
        StageWork.from_tables(fwd, bwd, comm=comm)
    )
    trace.assert_valid()
    # Makespan is bounded below by the busiest stage and by any single
    # microbatch's full round trip.
    busiest = max(fwd[s].sum() + bwd[s].sum() for s in range(p))
    assert trace.makespan >= busiest - 1e-9
    roundtrip = fwd[:, 0].sum() + bwd[:, 0].sum()
    assert trace.makespan >= roundtrip - 1e-9


@settings(max_examples=40, deadline=None)
@given(pipeline_instances())
def test_gpipe_and_1f1b_complete_same_work(instance):
    p, l, fwd, bwd, comm = instance
    work = StageWork.from_tables(fwd, bwd, comm=comm)
    gpipe = PipelineSimulator(p, l, ScheduleKind.GPIPE).run(work)
    onefb = PipelineSimulator(p, l, ScheduleKind.ONE_F_ONE_B).run(work)
    assert len(gpipe.records) == len(onefb.records) == 2 * p * l
    for stage in range(p):
        assert gpipe.stage_busy_time(stage) == pytest.approx(
            onefb.stage_busy_time(stage)
        )


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=3),
)
def test_interleaved_schedules_complete(p, groups, vpp):
    l = p * groups
    order = schedule_order(ScheduleKind.INTERLEAVED, p, l, vpp)
    total_ops = sum(len(ops) for ops in order.values())
    assert total_ops == 2 * p * l * vpp
    sim = PipelineSimulator(p, l, ScheduleKind.INTERLEAVED, vpp=vpp)
    trace = sim.run_uniform(1.0 / vpp, 2.0 / vpp)
    trace.assert_valid()


@settings(max_examples=30, deadline=None)
@given(pipeline_instances())
def test_slower_microbatch_never_speeds_up_pipeline(instance):
    """Monotonicity: inflating one op's duration cannot reduce makespan."""
    p, l, fwd, bwd, comm = instance
    base = PipelineSimulator(p, l).run(StageWork.from_tables(fwd, bwd, comm=comm))
    fwd2 = fwd.copy()
    fwd2[0, l // 2] += 2.0
    slow = PipelineSimulator(p, l).run(
        StageWork.from_tables(fwd2, bwd, comm=comm)
    )
    assert slow.makespan >= base.makespan - 1e-9
