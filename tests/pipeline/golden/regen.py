"""Regenerate the golden pipeline-trace fixtures.

Run after an *intentional* simulator semantics change::

    PYTHONPATH=src python -m tests.pipeline.golden.regen

Every fixture captures one canonical schedule evaluated on fixed
duration tables, with all floats serialized as C99 hex strings so the
snapshot comparison is bit-exact. The test module
(:mod:`tests.pipeline.test_golden_traces`) refuses drift: any kernel
change that perturbs a single ULP of any start/end time fails.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.pipeline.schedules import ScheduleKind
from repro.pipeline.simulator import PipelineSimulator, StageWork

GOLDEN_DIR = Path(__file__).resolve().parent


def canonical_cases():
    """(name, kind, p, l, vpp, fwd, bwd, comm) for every fixture."""
    rng = np.random.default_rng(20240715)
    hetero_fwd = rng.uniform(0.2, 2.5, (3, 6))
    hetero_bwd = rng.uniform(0.3, 4.0, (3, 6))
    frozen_bwd = rng.uniform(0.3, 4.0, (3, 5))
    frozen_bwd[rng.uniform(size=(3, 5)) < 0.4] = 0.0
    return [
        (
            "gpipe_uniform",
            ScheduleKind.GPIPE, 3, 4, 1,
            np.full((3, 4), 1.0), np.full((3, 4), 2.0), 0.1,
        ),
        (
            "one_f_one_b_uniform",
            ScheduleKind.ONE_F_ONE_B, 4, 8, 1,
            np.full((4, 8), 1.0), np.full((4, 8), 2.0), 0.05,
        ),
        (
            "interleaved_vpp2",
            ScheduleKind.INTERLEAVED, 2, 4, 2,
            np.full((2, 4), 0.5), np.full((2, 4), 1.0), 0.02,
        ),
        (
            "one_f_one_b_heterogeneous",
            ScheduleKind.ONE_F_ONE_B, 3, 6, 1,
            hetero_fwd, hetero_bwd, 0.07,
        ),
        (
            "one_f_one_b_frozen_backwards",
            ScheduleKind.ONE_F_ONE_B, 3, 5, 1,
            rng.uniform(0.2, 2.5, (3, 5)), frozen_bwd, 0.0,
        ),
    ]


def trace_to_fixture(name, kind, p, l, vpp, fwd, bwd, comm):
    sim = PipelineSimulator(p, l, kind, vpp=vpp)
    trace = sim.run(StageWork.from_tables(fwd, bwd, comm=comm))
    return {
        "name": name,
        "schedule": kind.value,
        "num_stages": p,
        "num_microbatches": l,
        "vpp": vpp,
        "comm": float(comm).hex(),
        "fwd": [[value.hex() for value in row] for row in fwd],
        "bwd": [[value.hex() for value in row] for row in bwd],
        "makespan": trace.makespan.hex(),
        "records": [
            {
                "stage": record.op.stage,
                "microbatch": record.op.microbatch,
                "direction": record.op.direction.value,
                "chunk": record.op.chunk,
                "start": record.start.hex(),
                "end": record.end.hex(),
            }
            for record in trace.records
        ],
    }


def main() -> None:
    for case in canonical_cases():
        fixture = trace_to_fixture(*case)
        path = GOLDEN_DIR / f"{fixture['name']}.json"
        path.write_text(json.dumps(fixture, indent=1) + "\n")
        print(f"wrote {path} ({len(fixture['records'])} records)")


if __name__ == "__main__":
    main()
