"""PipelineTrace accounting tests."""

import pytest

from repro.pipeline.ops import Direction, PipelineOp
from repro.pipeline.schedules import ScheduleKind
from repro.pipeline.simulator import PipelineSimulator
from repro.pipeline.trace import OpRecord, PipelineTrace


def uniform_trace(p=4, l=6, tf=1.0, tb=2.0):
    return PipelineSimulator(p, l, ScheduleKind.ONE_F_ONE_B).run_uniform(tf, tb)


class TestAccounting:
    def test_stage_busy_time(self):
        trace = uniform_trace()
        # Each stage runs l forwards and l backwards.
        assert trace.stage_busy_time(0) == pytest.approx(6 * 3.0)

    def test_bubble_fraction_formula(self):
        p, l = 4, 6
        trace = uniform_trace(p, l)
        expected = (p - 1) / (p - 1 + l)
        assert trace.bubble_fraction() == pytest.approx(expected)

    def test_last_stage_has_no_bubble_interior(self):
        trace = uniform_trace()
        # Stage p-1 in uniform 1F1B runs continuously between its first
        # and last op; its idle time equals warmup + cooldown.
        gaps = trace.stage_idle_gaps(3)
        assert gaps == []

    def test_first_stage_idle_gaps_exist(self):
        trace = uniform_trace()
        assert len(trace.stage_idle_gaps(0)) > 0
        assert trace.first_stage_unfilled_time() > 0

    def test_op_record_lookup(self):
        trace = uniform_trace()
        op = PipelineOp(0, 0, Direction.FWD)
        record = trace.op_record(op)
        assert record.start == 0.0
        with pytest.raises(KeyError):
            trace.op_record(PipelineOp(0, 99, Direction.FWD))


class TestValidation:
    def test_valid_trace_passes(self):
        uniform_trace().assert_valid()

    def test_overlap_detected(self):
        records = [
            OpRecord(PipelineOp(0, 0, Direction.FWD), 0.0, 2.0),
            OpRecord(PipelineOp(0, 1, Direction.FWD), 1.0, 3.0),
        ]
        trace = PipelineTrace(1, 2, 1, records)
        with pytest.raises(AssertionError):
            trace.assert_valid()

    def test_backward_before_forward_detected(self):
        records = [
            OpRecord(PipelineOp(0, 0, Direction.BWD), 0.0, 1.0),
            OpRecord(PipelineOp(0, 0, Direction.FWD), 1.0, 2.0),
        ]
        trace = PipelineTrace(1, 1, 1, records)
        with pytest.raises(AssertionError):
            trace.assert_valid()

    def test_op_record_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            OpRecord(PipelineOp(0, 0, Direction.FWD), 2.0, 1.0)


class TestRendering:
    def test_ascii_shape(self):
        trace = uniform_trace(p=3, l=4)
        art = trace.render_ascii(width=60)
        lines = art.splitlines()
        assert len(lines) == 3
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_forward_lowercase_backward_uppercase(self):
        art = uniform_trace(p=2, l=2).render_ascii(width=40)
        assert "a" in art and "A" in art

    def test_empty_trace(self):
        trace = PipelineTrace(1, 0, 1, [])
        assert trace.render_ascii() == "(empty trace)"
        assert trace.makespan == 0.0
        assert trace.bubble_fraction() == 0.0
