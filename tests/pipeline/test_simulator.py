"""Pipeline simulator tests: analytic cross-checks and invariants."""

import numpy as np
import pytest

from repro.pipeline.ops import Direction, PipelineOp
from repro.pipeline.schedules import ScheduleKind
from repro.pipeline.simulator import PipelineSimulator, StageWork


class TestAnalyticMakespans:
    @pytest.mark.parametrize("p,l", [(2, 4), (4, 6), (4, 8), (8, 16)])
    def test_1f1b_uniform_makespan(self, p, l):
        """1F1B with uniform times: (p-1+l)*(tf+tb)."""
        tf, tb = 1.0, 2.0
        trace = PipelineSimulator(p, l, ScheduleKind.ONE_F_ONE_B).run_uniform(
            tf, tb
        )
        assert trace.makespan == pytest.approx((p - 1 + l) * (tf + tb))

    @pytest.mark.parametrize("p,l", [(2, 4), (4, 8)])
    def test_gpipe_uniform_makespan(self, p, l):
        tf, tb = 1.0, 2.0
        trace = PipelineSimulator(p, l, ScheduleKind.GPIPE).run_uniform(tf, tb)
        assert trace.makespan == pytest.approx((p - 1 + l) * (tf + tb))

    def test_vpp_reduces_bubble(self):
        p, l = 4, 8
        base = PipelineSimulator(p, l, ScheduleKind.ONE_F_ONE_B).run_uniform(
            1.0, 2.0
        )
        vpp = PipelineSimulator(p, l, ScheduleKind.INTERLEAVED, vpp=2)
        # Per-chunk duration is half the per-stage duration.
        trace = vpp.run_uniform(0.5, 1.0)
        assert trace.makespan < base.makespan
        # VPP bubble is (p-1)*(f+b)/v; total = l*(f+b) + bubble.
        expected = l * 3.0 + (p - 1) * 3.0 / 2
        assert trace.makespan == pytest.approx(expected)

    def test_single_stage_no_bubble(self):
        trace = PipelineSimulator(1, 8).run_uniform(1.0, 2.0)
        assert trace.makespan == pytest.approx(8 * 3.0)
        assert trace.bubble_fraction() == pytest.approx(0.0)


class TestHeterogeneousTimes:
    def test_straggler_microbatch_extends_makespan(self):
        p, l = 3, 6
        fwd = np.ones((p, l))
        bwd = 2 * np.ones((p, l))
        base = PipelineSimulator(p, l).run(StageWork.from_tables(fwd, bwd))
        fwd_straggler = fwd.copy()
        fwd_straggler[0, 2] = 20.0  # heavy microbatch at the first stage
        slow = PipelineSimulator(p, l).run(
            StageWork.from_tables(fwd_straggler, bwd)
        )
        assert slow.makespan > base.makespan

    def test_comm_delay_extends_makespan(self):
        p, l = 4, 8
        fast = PipelineSimulator(p, l).run_uniform(1.0, 2.0, comm=0.0)
        slow = PipelineSimulator(p, l).run_uniform(1.0, 2.0, comm=0.5)
        assert slow.makespan > fast.makespan

    def test_trace_validity_random(self):
        rng = np.random.default_rng(0)
        p, l = 5, 12
        fwd = rng.uniform(0.5, 2.0, (p, l))
        bwd = rng.uniform(1.0, 4.0, (p, l))
        trace = PipelineSimulator(p, l).run(
            StageWork.from_tables(fwd, bwd, comm=0.1)
        )
        trace.assert_valid()
        assert trace.makespan >= (fwd.sum(axis=1) + bwd.sum(axis=1)).max()


class TestVppSimulation:
    def test_interleaved_valid(self):
        sim = PipelineSimulator(4, 8, ScheduleKind.INTERLEAVED, vpp=2)
        trace = sim.run_uniform(0.5, 1.0)
        trace.assert_valid()

    def test_vpp_forced_to_one_for_other_schedules(self):
        sim = PipelineSimulator(4, 8, ScheduleKind.ONE_F_ONE_B, vpp=4)
        assert sim.vpp == 1


class TestStageWork:
    def test_from_tables_duration_lookup(self):
        work = StageWork.from_tables([[1.0, 2.0]], [[3.0, 4.0]], comm=0.5)
        assert work.duration(PipelineOp(0, 1, Direction.FWD)) == 2.0
        assert work.duration(PipelineOp(0, 0, Direction.BWD)) == 3.0
        assert work.comm_delay(0, 1, Direction.FWD) == 0.5
