"""Property-based equivalence: vectorized kernel vs reference evaluator.

The vectorized :mod:`repro.pipeline.kernel` must reproduce the retained
per-op worklist (:meth:`PipelineSimulator.run_reference`) **exactly** —
same IEEE operations per op, so ``==`` on every start/end time, across
all schedule kinds, heterogeneous durations (including zero-duration
ops, as frozen modules produce), and communication delays. The suite
also asserts the simulator invariants directly: no stage overlap,
dependencies respected, makespan equals the latest op end.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.pipeline.kernel import get_kernel
from repro.pipeline.ops import Direction
from repro.pipeline.schedules import ScheduleKind
from repro.pipeline.simulator import PipelineSimulator, StageWork


@st.composite
def simulator_instances(draw):
    """A random (simulator, work) pair covering every ScheduleKind."""
    kind = draw(st.sampled_from(list(ScheduleKind)))
    p = draw(st.integers(min_value=1, max_value=5))
    if kind is ScheduleKind.INTERLEAVED:
        vpp = draw(st.integers(min_value=1, max_value=3))
        groups = draw(st.integers(min_value=1, max_value=3))
        l = p * groups  # the Megatron divisibility constraint
    else:
        vpp = 1
        l = draw(st.integers(min_value=1, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    fwd = rng.uniform(0.05, 3.0, (p, l))
    bwd = rng.uniform(0.05, 5.0, (p, l))
    # Zero durations occur in practice (fully frozen backward passes).
    if draw(st.booleans()):
        zero_frac = draw(st.floats(min_value=0.0, max_value=1.0))
        bwd[rng.uniform(size=(p, l)) < zero_frac] = 0.0
    comm = draw(st.floats(min_value=0.0, max_value=0.5, allow_nan=False))
    sim = PipelineSimulator(p, l, kind, vpp=vpp)
    return sim, StageWork.from_tables(fwd, bwd, comm=comm)


def assert_traces_identical(vectorized, reference):
    assert len(vectorized.records) == len(reference.records)
    for fast, ref in zip(vectorized.records, reference.records):
        assert fast.op == ref.op
        assert fast.start == ref.start, (fast.op, fast.start, ref.start)
        assert fast.end == ref.end, (fast.op, fast.end, ref.end)


@settings(max_examples=60, deadline=None)
@given(simulator_instances())
def test_kernel_matches_reference_exactly(instance):
    sim, work = instance
    assert_traces_identical(sim.run(work), sim.run_reference(work))


@settings(max_examples=30, deadline=None)
@given(simulator_instances())
def test_kernel_matches_reference_with_callable_work(instance):
    """The non-table (callable duration / generic comm) path too."""
    sim, work = instance
    fwd, bwd = work.fwd_table, work.bwd_table
    comm = work.uniform_comm
    generic = StageWork(
        duration=lambda op: float(
            (fwd if op.is_forward else bwd)[op.stage][op.microbatch]
        ),
        comm_delay=lambda src, dst, direction: (
            comm if direction is Direction.FWD else comm * 0.5
        ),
    )
    assert_traces_identical(sim.run(generic), sim.run_reference(generic))


@settings(max_examples=60, deadline=None)
@given(simulator_instances())
def test_simulator_invariants(instance):
    sim, work = instance
    trace = sim.run(work)
    # Physical consistency: no overlap, deps respected.
    trace.assert_valid()
    # Makespan is exactly the latest op end.
    assert trace.makespan == max(r.end for r in trace.records)
    # Every op ran, exactly once.
    assert len(trace.records) == 2 * sim.num_stages * sim.num_microbatches * sim.vpp
    assert len({r.op for r in trace.records}) == len(trace.records)
    # Starts are non-negative and every op's duration matches its table.
    for record in trace.records:
        assert record.start >= 0.0
        assert record.end == record.start + work.duration(record.op)


@settings(max_examples=25, deadline=None)
@given(simulator_instances(), st.integers(min_value=2, max_value=5))
def test_simulate_many_matches_individual_runs(instance, batch):
    """The batched sweep equals per-item evaluation, bit for bit."""
    sim, work = instance
    rng = np.random.default_rng(0)
    items = [work] + [
        StageWork.from_tables(
            work.fwd_table * rng.uniform(0.5, 2.0, work.fwd_table.shape),
            work.bwd_table * rng.uniform(0.5, 2.0, work.bwd_table.shape),
            comm=work.uniform_comm,
        )
        for _ in range(batch - 1)
    ]
    makespans = sim.simulate_many(items)
    traces = sim.simulate_many(items, traces=True)
    for i, item in enumerate(items):
        reference = sim.run_reference(item)
        assert makespans[i] == reference.makespan
        assert_traces_identical(traces[i], reference)


@settings(max_examples=40, deadline=None)
@given(simulator_instances())
def test_traceless_fast_paths_match_trace(instance):
    """makespan / bubble / first-stage-gap helpers == trace values."""
    sim, work = instance
    kernel = sim.kernel
    durations = kernel.durations_from_tables(work.fwd_table, work.bwd_table)
    start, end = kernel.evaluate(durations, work.uniform_comm)
    trace = sim.run_reference(work)
    assert kernel.makespan(end) == trace.makespan
    assert kernel.bubble_fraction(start, end) == trace.bubble_fraction()
    gaps = trace.stage_idle_gaps(0)
    expected = (gaps[0][1] - gaps[0][0]) if gaps else 0.0
    assert kernel.first_stage_gap(start, end) == expected


def test_kernel_cache_reuses_shapes():
    get_kernel.cache_clear()
    a = PipelineSimulator(4, 8, ScheduleKind.ONE_F_ONE_B).kernel
    b = PipelineSimulator(4, 8, ScheduleKind.ONE_F_ONE_B).kernel
    assert a is b
    c = PipelineSimulator(4, 9, ScheduleKind.ONE_F_ONE_B).kernel
    assert c is not a
    info = get_kernel.cache_info()
    assert info.hits >= 1 and info.misses >= 2


def test_batched_shape_validation():
    sim = PipelineSimulator(2, 3)
    kernel = sim.kernel
    with pytest.raises(ValueError):
        kernel.evaluate_batch(np.zeros((2, kernel.num_ops + 1)))
    with pytest.raises(ValueError):
        sim.simulate_many([StageWork(duration=lambda op: 1.0)])


@pytest.mark.parametrize(
    "kind,p,n,vpp",
    [
        (ScheduleKind.ONE_F_ONE_B, 1, 1, 1),
        (ScheduleKind.ONE_F_ONE_B, 4, 3, 1),
        (ScheduleKind.ONE_F_ONE_B, 7, 14, 1),
        (ScheduleKind.ONE_F_ONE_B, 12, 24, 1),
        (ScheduleKind.GPIPE, 4, 6, 1),
        (ScheduleKind.INTERLEAVED, 3, 6, 2),
    ],
)
def test_makespan_only_paths_match_evaluate(kind, p, n, vpp):
    """The makespan-only entry points (the orchestration refinement's
    fast path) are bit-identical to ``makespan(evaluate(...)[1])`` for
    every delay form they accept."""
    kernel = get_kernel(kind, p, n, vpp)
    rng = np.random.default_rng(p * 1000 + n)
    durations = rng.uniform(0.0, 1.0, kernel.num_ops)
    per_op = rng.uniform(0.0, 0.1, kernel.num_ops)
    for delays in (0.0, 0.37, per_op):
        expected = kernel.makespan(kernel.evaluate(durations, delays)[1])
        assert kernel.makespan_from_durations(durations, delays) == expected

    batch = rng.uniform(0.0, 1.0, (3, kernel.num_ops))
    for delays in (0.0, 0.37, rng.uniform(0.0, 0.1, 3)):
        expected = kernel.makespans(kernel.evaluate_batch(batch, delays)[1])
        got = kernel.makespans_from_durations(batch, delays)
        assert np.array_equal(got, expected)
