"""CLI tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["plan", "--model", "gpt-5", "--gpus", "8", "--gbs", "8"]
            )

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["plan", "--model", "mllm-9b", "--gpus", "8", "--gbs", "8",
                 "--system", "horovod"]
            )


class TestCommands:
    def test_plan(self, capsys):
        code = main(
            ["plan", "--model", "mllm-9b", "--gpus", "48", "--gbs", "32"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "orchestration [disttrain]" in out
        assert "predicted iteration" in out

    def test_simulate(self, capsys):
        code = main(
            ["simulate", "--model", "mllm-9b", "--gpus", "48", "--gbs", "32"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "MFU" in out
        assert "tokens/s" in out

    def test_compare(self, capsys):
        code = main(
            ["compare", "--model", "mllm-9b", "--gpus", "48", "--gbs", "32",
             "--systems", "disttrain", "megatron-lm"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "disttrain" in out and "megatron-lm" in out
        assert "x MFU" in out

    def test_data_stats(self, capsys):
        code = main(["data-stats", "--samples", "100"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cv_image_tokens" in out

    def test_frozen_flag(self, capsys):
        code = main(
            ["plan", "--model", "mllm-9b", "--gpus", "48", "--gbs", "32",
             "--frozen", "llm-only"]
        )
        assert code == 0
