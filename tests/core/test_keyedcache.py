"""One keyed-cache implementation backs every process-wide memo."""

from repro.core.keyedcache import KeyedCache
from repro.orchestration.plancache import PlanCache


class TestKeyedCache:
    def test_hit_miss_accounting(self):
        cache = KeyedCache(maxsize=4)
        calls = []
        assert cache.get_or_compute("a", lambda: calls.append(1) or 7) == 7
        assert cache.get_or_compute("a", lambda: calls.append(2) or 9) == 7
        assert calls == [1]
        assert cache.stats() == (1, 1)

    def test_fifo_eviction(self):
        cache = KeyedCache(maxsize=2)
        for key in "abc":
            cache.get_or_compute(key, lambda k=key: k.upper())
        assert cache.lookup("a") is None  # first in, first out
        assert cache.lookup("c") == "C"
        assert len(cache) == 2

    def test_bypass_leaves_no_trace(self):
        cache = KeyedCache()
        value, hit = cache.fetch("k", lambda: 1, bypass=True)
        assert (value, hit) == (1, False)
        assert len(cache) == 0
        assert cache.stats() == (0, 0)

    def test_failures_are_not_cached(self):
        cache = KeyedCache()
        try:
            cache.get_or_compute("k", lambda: 1 / 0)
        except ZeroDivisionError:
            pass
        assert len(cache) == 0
        assert cache.get_or_compute("k", lambda: 5) == 5

    def test_keys_in_fifo_order(self):
        cache = KeyedCache(maxsize=4)
        for key in "cab":
            cache.get_or_compute(key, lambda k=key: k)
        assert cache.keys() == ("c", "a", "b")

    def test_resize_grow_keeps_entries_and_counters(self):
        cache = KeyedCache(maxsize=2)
        for key in "ab":
            cache.get_or_compute(key, lambda k=key: k)
        cache.resize(8)
        assert cache.maxsize == 8
        assert cache.keys() == ("a", "b")
        assert cache.stats() == (0, 2)
        for key in "cdef":
            cache.get_or_compute(key, lambda k=key: k)
        assert len(cache) == 6  # no longer evicting at 2

    def test_resize_shrink_evicts_oldest(self):
        cache = KeyedCache(maxsize=4)
        for key in "abcd":
            cache.get_or_compute(key, lambda k=key: k)
        cache.resize(2)
        assert cache.keys() == ("c", "d")

    def test_resize_rejects_nonpositive(self):
        import pytest

        with pytest.raises(ValueError):
            KeyedCache().resize(0)


class TestSharedImplementation:
    def test_plan_cache_is_a_keyed_cache(self):
        # The plan cache, the data-profile cache, and the profiler cache
        # all share this one implementation.
        assert issubclass(PlanCache, KeyedCache)

    def test_profile_caches_share_the_module(self):
        from repro.core.api import PROFILE_CACHE
        from repro.orchestration.problem import PROFILER_CACHE

        assert isinstance(PROFILE_CACHE, KeyedCache)
        assert isinstance(PROFILER_CACHE, KeyedCache)

    def test_profile_cache_deduplicates_work(self):
        from repro.core.api import PROFILE_CACHE, _cached_profile
        from repro.core.config import DistTrainConfig

        config = DistTrainConfig.preset("mllm-9b", 48, 16)
        PROFILE_CACHE.clear()
        first = _cached_profile(
            config.mllm.seq_len, config.data_config, config.data_seed
        )
        second = _cached_profile(
            config.mllm.seq_len, config.data_config, config.data_seed
        )
        assert first is second
        assert PROFILE_CACHE.stats() == (1, 1)
