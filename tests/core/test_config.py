"""DistTrainConfig tests."""

import pytest

from repro.core.config import DistTrainConfig


class TestPreset:
    def test_basic(self):
        config = DistTrainConfig.preset("mllm-9b", 48, 64)
        assert config.mllm.name == "mllm-9b"
        assert config.cluster.num_gpus == 48
        assert config.system == "disttrain"

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            DistTrainConfig.preset("mllm-1t", 48, 64)

    def test_unknown_frozen(self):
        with pytest.raises(KeyError):
            DistTrainConfig.preset("mllm-9b", 48, 64, frozen="half")

    def test_frozen_preset_applied(self):
        config = DistTrainConfig.preset("mllm-9b", 48, 64,
                                        frozen="llm-only")
        assert config.frozen.train_llm
        assert not config.frozen.train_encoder

    def test_unknown_system(self):
        with pytest.raises(ValueError):
            DistTrainConfig.preset("mllm-9b", 48, 64, system="horovod")

    def test_batch_divisibility(self):
        with pytest.raises(ValueError):
            DistTrainConfig.preset("mllm-9b", 48, 65, microbatch_size=2)


class TestDerivedSettings:
    def test_disttrain_defaults(self):
        config = DistTrainConfig.preset("mllm-9b", 48, 64)
        assert config.effective_intra_reordering
        assert config.effective_inter_reordering
        assert config.effective_preprocessing == "disaggregated"
        assert config.tp_overlap_fraction == 0.9

    def test_megatron_defaults(self):
        config = DistTrainConfig.preset("mllm-9b", 48, 64).with_system(
            "megatron-lm"
        )
        assert not config.effective_intra_reordering
        assert not config.effective_inter_reordering
        assert config.effective_preprocessing == "colocated"
        assert config.tp_overlap_fraction == 0.0

    def test_explicit_overrides_win(self):
        config = DistTrainConfig.preset(
            "mllm-9b", 48, 64, intra_reordering=False, preprocessing="none"
        )
        assert not config.effective_intra_reordering
        assert config.effective_preprocessing == "none"

    def test_with_system_preserves_task(self):
        config = DistTrainConfig.preset("mllm-15b", 96, 64)
        other = config.with_system("distmm*")
        assert other.mllm is config.mllm
        assert other.global_batch_size == config.global_batch_size

    def test_with_updates(self):
        config = DistTrainConfig.preset("mllm-9b", 48, 64).with_(vpp=2)
        assert config.vpp == 2
