"""Public API integration tests (small scale for speed)."""

import pytest

from repro.core.api import (
    build_simulator,
    compare_systems,
    plan,
    simulate,
    simulate_run,
)
from repro.core.config import DistTrainConfig


@pytest.fixture(scope="module")
def config():
    return DistTrainConfig.preset("mllm-9b", 48, 32, num_iterations=2)


@pytest.fixture(scope="module")
def disttrain_plan(config):
    return plan(config)


class TestPlan:
    def test_disttrain_plan(self, config, disttrain_plan):
        assert disttrain_plan.plan.label == "disttrain"
        assert disttrain_plan.plan.num_gpus <= 48

    def test_megatron_plan(self, config):
        result = plan(config.with_system("megatron-lm"))
        assert result.plan.monolithic

    def test_distmm_plan(self, config):
        result = plan(config.with_system("distmm*"))
        assert result.plan.label == "distmm*"


class TestSimulate:
    def test_single_iteration(self, config, disttrain_plan):
        result = simulate(config, disttrain_plan)
        assert result.iteration_time > 0
        assert 0 < result.mfu < 0.7

    def test_run_aggregation(self, config, disttrain_plan):
        result = simulate_run(config, disttrain_plan)
        assert len(result.iterations) == 2
        assert result.mean_mfu > 0

    def test_build_simulator_reflects_config(self, config, disttrain_plan):
        simulator = build_simulator(config, disttrain_plan)
        assert simulator.intra_reordering
        assert simulator.preprocessing == "disaggregated"


class TestComparison:
    def test_disttrain_beats_megatron(self, config):
        comparison = compare_systems(
            config, systems=("disttrain", "megatron-lm")
        )
        assert comparison.mfu_ratio("megatron-lm") > 1.2
        assert comparison.throughput_ratio("megatron-lm") > 1.2

    def test_results_keyed_by_system(self, config):
        comparison = compare_systems(
            config, systems=("disttrain", "megatron-lm")
        )
        assert set(comparison.results) == {"disttrain", "megatron-lm"}
