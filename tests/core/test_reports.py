"""Report formatting tests."""

from repro.core.reports import format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["name", "value"], [["a", 1], ["longer", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) == {"-"}
        assert len(lines) == 5

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456], [12345.6]])
        assert "0.123" in text
        assert "12,346" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text
