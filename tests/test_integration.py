"""Cross-package integration tests.

End-to-end invariants spanning orchestration, runtime, data, and the
public API — the claims a downstream user relies on.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.api import build_simulator, plan, simulate
from repro.core.config import DistTrainConfig
from repro.data.synthetic import SyntheticMultimodalDataset
from repro.orchestration.adaptive import AdaptiveOrchestrator
from repro.orchestration.problem import OrchestrationProblem, SampleProfile
from repro.pipeline.schedules import ScheduleKind


@pytest.fixture(scope="module")
def profile():
    return SampleProfile.from_samples(
        SyntheticMultimodalDataset(seed=1).take(128)
    )


class TestOrchestrationRobustness:
    @settings(max_examples=6, deadline=None)
    @given(
        nodes=st.integers(min_value=3, max_value=20),
        gbs_factor=st.integers(min_value=2, max_value=8),
    )
    def test_plan_always_fits_and_validates(self, nodes, gbs_factor):
        """For any cluster size / batch size, the adaptive plan fits the
        cluster, divides the batch, and splits the layers."""
        profile = SampleProfile()  # defaults, avoids re-profiling data
        problem = OrchestrationProblem(
            mllm=DistTrainConfig.preset("mllm-9b", 8, 8).mllm,
            cluster=DistTrainConfig.preset(
                "mllm-9b", nodes * 8, 8
            ).cluster,
            global_batch_size=8 * gbs_factor,
            profile=profile,
        )
        result = AdaptiveOrchestrator(problem).plan()
        assert result.plan.num_gpus <= problem.num_gpus
        result.plan.validate(problem.global_batch_size)

    def test_bigger_cluster_never_slower(self, profile):
        """More GPUs => iteration time does not increase."""
        times = []
        for gpus in (32, 64, 128):
            problem = OrchestrationProblem(
                mllm=DistTrainConfig.preset("mllm-9b", gpus, 64).mllm,
                cluster=DistTrainConfig.preset("mllm-9b", gpus, 64).cluster,
                global_batch_size=64,
                profile=profile,
            )
            result = AdaptiveOrchestrator(problem).plan()
            times.append(result.predicted_iteration_time)
        assert times[0] >= times[1] * 0.95
        assert times[1] >= times[2] * 0.95


class TestEndToEndClaims:
    @pytest.fixture(scope="class")
    def config(self):
        return DistTrainConfig.preset("mllm-9b", 48, 32)

    def test_disttrain_beats_megatron_on_iteration_time(self, config):
        ours = simulate(config)
        theirs = simulate(config.with_system("megatron-lm"))
        assert ours.iteration_time < theirs.iteration_time

    def test_gpipe_schedule_runs(self, config):
        gpipe_config = config.with_(schedule=ScheduleKind.GPIPE)
        result = simulate(gpipe_config)
        assert result.iteration_time > 0

    def test_frozen_phase_runs_faster(self, config):
        frozen = config.with_(
            frozen=DistTrainConfig.preset(
                "mllm-9b", 48, 32, frozen="all-frozen"
            ).frozen
        )
        orchestration = plan(config)  # same plan for both
        full = build_simulator(config, orchestration).simulate(
            SyntheticMultimodalDataset(seed=0).take(32)
        )
        light = build_simulator(frozen, orchestration).simulate(
            SyntheticMultimodalDataset(seed=0).take(32)
        )
        assert light.pipeline_time < full.pipeline_time

    def test_determinism(self, config):
        a = simulate(config)
        b = simulate(config)
        assert a.iteration_time == pytest.approx(b.iteration_time)
        assert a.mfu == pytest.approx(b.mfu)


class TestReorderingConvergenceSemantics:
    def test_reordered_batches_are_permutations(self):
        """The simulator consumes every sample exactly once regardless
        of reordering — the convergence-semantics guarantee."""
        from repro.reordering.intra import intra_reorder

        batch = SyntheticMultimodalDataset(seed=9).take(64)
        reordered = intra_reorder(batch, 8)
        assert sorted(s.sample_id for s in reordered) == sorted(
            s.sample_id for s in batch
        )
