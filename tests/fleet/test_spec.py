"""FleetSpec validation, the homogeneous builder, and the campaign
integration (fleet trials, cache keys, worker execution)."""

import pytest

from repro.cluster.cluster import make_cluster
from repro.experiments.runner import execute_trial
from repro.experiments.spec import FLEET_PARAMS, TrialSpec
from repro.fleet import FleetJobSpec, FleetSpec
from repro.fleet.policies import make_policy
from repro.scenarios import ScenarioSpec
from repro.scenarios.events import EventTrace, ResizeEvent


class TestFleetJobSpec:
    def test_demand_is_the_config_cluster(self, job_config):
        job = FleetJobSpec(
            name="a", config=job_config, scenario=ScenarioSpec()
        )
        assert job.demand_gpus == 48
        assert job.floor_gpus == 8  # one node by default

    def test_rejects_scripted_resizes(self, job_config):
        with pytest.raises(ValueError, match="scheduling policy"):
            FleetJobSpec(
                name="a",
                config=job_config,
                scenario=ScenarioSpec(
                    events=EventTrace(
                        [ResizeEvent(iteration=5, num_gpus=40)]
                    )
                ),
            )

    def test_rejects_fractional_node_floor(self, job_config):
        with pytest.raises(ValueError, match="whole nodes"):
            FleetJobSpec(
                name="a", config=job_config, scenario=ScenarioSpec(),
                min_gpus=12,
            )

    def test_rejects_deadline_before_arrival(self, job_config):
        with pytest.raises(ValueError, match="after the job's arrival"):
            FleetJobSpec(
                name="a", config=job_config, scenario=ScenarioSpec(),
                arrival_s=100.0, deadline_s=100.0,
            )

    def test_rejects_non_positive_slo_factor(self, job_config):
        with pytest.raises(ValueError, match="slo_factor"):
            FleetJobSpec(
                name="a", config=job_config, scenario=ScenarioSpec(),
                slo_factor=0.0,
            )


class TestFleetSpec:
    def test_rejects_duplicate_names(self, job_config):
        jobs = [
            FleetJobSpec(name="a", config=job_config,
                         scenario=ScenarioSpec())
        ] * 2
        with pytest.raises(ValueError, match="duplicate"):
            FleetSpec(cluster=make_cluster(96), jobs=jobs)

    def test_rejects_unknown_policy(self, job_config):
        jobs = [
            FleetJobSpec(name="a", config=job_config,
                         scenario=ScenarioSpec())
        ]
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            FleetSpec(cluster=make_cluster(96), jobs=jobs, policy="lifo")
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            make_policy("lifo")

    def test_homogeneous_builder(self, job_config):
        spec = FleetSpec.homogeneous(
            job_config,
            cluster_gpus=96,
            num_jobs=3,
            job_gpus=24,
            arrival_spacing_s=60.0,
            priorities=(2, 1),
            policy="priority",
            scenario=ScenarioSpec(num_iterations=100, seed=7),
        )
        assert spec.cluster.num_gpus == 96
        assert [j.name for j in spec.jobs] == ["job00", "job01", "job02"]
        assert all(j.demand_gpus == 24 for j in spec.jobs)
        assert [j.arrival_s for j in spec.jobs] == [0.0, 60.0, 120.0]
        assert [j.priority for j in spec.jobs] == [2, 1, 2]
        # Identical tenants must not fail in lockstep: derived seeds.
        assert [j.scenario.seed for j in spec.jobs] == [7, 8, 9]

    def test_homogeneous_accepts_explicit_arrivals(self, job_config):
        spec = FleetSpec.homogeneous(
            job_config,
            cluster_gpus=96,
            num_jobs=3,
            arrivals=(0.0, 17.5, 503.0),
        )
        assert [j.arrival_s for j in spec.jobs] == [0.0, 17.5, 503.0]
        with pytest.raises(ValueError, match="entries for"):
            FleetSpec.homogeneous(
                job_config, cluster_gpus=96, num_jobs=3, arrivals=(0.0,)
            )

    def test_canonical_is_json_safe(self, job_config):
        import json

        spec = FleetSpec.homogeneous(
            job_config, cluster_gpus=96, num_jobs=2
        )
        text = json.dumps(spec.canonical(), sort_keys=True)
        assert "job00" in text and "fair-share" in text

    def test_canonical_covers_pack_and_slo_fields(self, job_config):
        base = FleetSpec.homogeneous(
            job_config, cluster_gpus=96, num_jobs=2
        )
        assert base.canonical()["pack"] is None
        packed = base.with_(pack="blast-radius")
        assert packed.canonical() != base.canonical()
        sloed = base.with_(
            jobs=(
                base.jobs[0],
                FleetJobSpec(
                    name="job01",
                    config=job_config,
                    scenario=base.jobs[1].scenario,
                    slo_factor=2.0,
                    job_class="prod",
                ),
            )
        )
        assert sloed.canonical() != base.canonical()


class TestCampaignIntegration:
    PARAMS = {
        "model": "mllm-9b",
        "gpus": 96,
        "gbs": 16,
        "fleet_policy": "fair-share",
        "fleet_jobs": 3,
        "fleet_job_gpus": 48,
        "fleet_arrival_spacing": 30.0,
        "scenario_iterations": 20,
    }

    def test_fleet_params_are_known(self):
        trial = TrialSpec(self.PARAMS)
        assert set(trial.fleet_params()) == {
            "fleet_policy", "fleet_jobs", "fleet_job_gpus",
            "fleet_arrival_spacing",
        }
        assert set(FLEET_PARAMS) >= set(trial.fleet_params())

    def test_to_fleet_materializes_spec(self):
        fleet = TrialSpec(self.PARAMS).to_fleet()
        assert fleet is not None
        assert fleet.policy == "fair-share"
        assert len(fleet.jobs) == 3
        assert fleet.cluster.num_gpus == 96
        assert all(j.demand_gpus == 48 for j in fleet.jobs)
        assert all(
            j.scenario.num_iterations == 20 for j in fleet.jobs
        )

    def test_plain_trial_has_no_fleet(self):
        trial = TrialSpec({"model": "mllm-9b", "gpus": 48, "gbs": 16})
        assert trial.to_fleet() is None

    def test_cache_key_covers_fleet_fields(self):
        base = TrialSpec(self.PARAMS)
        for key, value in (
            ("fleet_policy", "fifo"),
            ("fleet_jobs", 4),
            ("fleet_arrival_spacing", 31.0),
        ):
            changed = TrialSpec({**self.PARAMS, key: value})
            assert changed.cache_key != base.cache_key
        # ...and is stable for an identical assignment.
        assert TrialSpec(dict(self.PARAMS)).cache_key == base.cache_key

    def test_label_names_the_fleet(self):
        label = TrialSpec(self.PARAMS).label()
        assert "fleet(3x,fair-share)" in label

    def test_execute_trial_runs_the_fleet(self):
        index, record = execute_trial((0, dict(self.PARAMS), "key"))
        assert index == 0
        assert record["status"] == "ok", record["error"]
        for key in ("fleet_goodput", "utilization", "mean_jct_seconds"):
            assert key in record["metrics"]


class TestPackTrials:
    PARAMS = {
        "model": "mllm-9b",
        "gpus": 96,
        "gbs": 16,
        "fleet_pack": "steady",
        "fleet_jobs": 2,
        "scenario_iterations": 20,
    }

    def test_to_fleet_expands_the_pack(self):
        fleet = TrialSpec(self.PARAMS).to_fleet()
        assert fleet.pack == "steady"
        assert len(fleet.jobs) == 2
        assert [j.arrival_s for j in fleet.jobs] == [0.0, 120.0]
        assert all(j.scenario.pack == "steady" for j in fleet.jobs)

    def test_pack_is_in_cache_key_and_label(self):
        base = TrialSpec(self.PARAMS)
        changed = TrialSpec({**self.PARAMS, "fleet_pack": "blast-radius"})
        assert changed.cache_key != base.cache_key
        assert "pack=steady" in base.label()

    def test_policy_override_beats_the_pack_default(self):
        trial = TrialSpec({**self.PARAMS, "fleet_policy": "fifo"})
        assert trial.to_fleet().policy == "fifo"

    def test_execute_trial_reports_slo_metrics(self):
        params = {**self.PARAMS, "fleet_pack": "blast-radius"}
        index, record = execute_trial((0, params, "key"))
        assert record["status"] == "ok", record.get("error")
        metrics = record["metrics"]
        assert 0.0 <= metrics["slo_attainment"] <= 1.0
        assert metrics["slo_jobs"] == 2.0
