"""The ``repro fleet`` CLI surface."""

import json

import pytest

from repro.cli import main


class TestFleetRun:
    ARGS = [
        "fleet", "run", "--model", "mllm-9b", "--gpus", "96",
        "--gbs", "16", "--jobs", "3", "--job-gpus", "48",
        "--arrival-spacing", "40", "--iterations", "30",
    ]

    def test_human_report(self, capsys):
        code = main(self.ARGS + ["--policy", "fifo"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fleet goodput" in out
        assert "plan cache (hit/miss)" in out
        assert "per-job outcomes:" in out
        assert "job02" in out

    def test_json_is_machine_readable(self, capsys):
        code = main(self.ARGS + ["--policy", "fair-share", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)  # nothing but one JSON document
        assert payload["policy"] == "fair-share"
        assert payload["cluster_gpus"] == 96
        assert set(payload["plan_cache"]) == {"hits", "misses"}
        assert len(payload["jobs"]) == 3
        for job in payload["jobs"]:
            # The satellite contract: per-job plan-cache accounting.
            assert "plan_cache_hits" in job
            assert "plan_cache_misses" in job
            assert "jct_seconds" in job

    def test_output_writes_report(self, tmp_path, capsys):
        path = tmp_path / "fleet.json"
        code = main(
            self.ARGS + ["--policy", "priority", "--output", str(path)]
        )
        capsys.readouterr()
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["policy"] == "priority"

    def test_bad_parameters_exit_2(self, capsys):
        code = main([
            "fleet", "run", "--model", "mllm-9b", "--gpus", "96",
            "--gbs", "16", "--jobs", "0",
        ])
        err = capsys.readouterr().err
        assert code == 2
        assert "error" in err

    def test_parser_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--policy", "lifo"])

    def test_pack_run_reports_slo(self, capsys):
        code = main([
            "fleet", "run", "--model", "mllm-9b", "--gpus", "96",
            "--gbs", "16", "--jobs", "3", "--job-gpus", "48",
            "--iterations", "30", "--pack", "blast-radius", "--elastic",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "blast-radius" in out
        assert "SLO attainment" in out
        assert "job00-standard" in out

    def test_pack_json_payload(self, capsys):
        code = main([
            "fleet", "run", "--model", "mllm-9b", "--gpus", "96",
            "--gbs", "16", "--jobs", "2", "--job-gpus", "48",
            "--iterations", "20", "--pack", "steady", "--json",
        ])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert payload["pack"] == "steady"
        assert payload["metrics"]["slo_jobs"] == 0.0

    def test_parser_rejects_unknown_pack(self):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--pack", "chaos-monkey"])

    def test_json_exposes_state_cache_and_execution(self, capsys):
        code = main(self.ARGS + ["--json"])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        # The jobstate-cache satellite contract: per-run hit/miss.
        assert set(payload["state_cache"]) >= {"hits", "misses"}
        assert payload["execution"]["workers"] == 1
        assert payload["execution"]["shard_sync_bytes"] == 0

    def test_sharded_run_matches_in_process(self, capsys):
        """--workers 2 must produce the identical results payload;
        only the execution-side keys may differ."""
        from repro.fleet.job import STATE_CACHE
        from repro.orchestration.plancache import PLAN_CACHE

        # Both runs must see the same initial cache state for their
        # plan counters to be comparable (the CLI does not reset
        # process-wide caches between in-process invocations).
        PLAN_CACHE.clear()
        STATE_CACHE.clear()
        code = main(self.ARGS + ["--policy", "fifo", "--json"])
        base = json.loads(capsys.readouterr().out)
        assert code == 0
        PLAN_CACHE.clear()
        STATE_CACHE.clear()
        code = main(
            self.ARGS + ["--policy", "fifo", "--json", "--workers", "2"]
        )
        sharded = json.loads(capsys.readouterr().out)
        assert code == 0
        assert sharded["execution"]["workers"] == 2
        assert sharded["execution"]["shard_sync_bytes"] > 0
        for doc in (base, sharded):
            doc.pop("state_cache")
            doc.pop("execution")
        assert sharded == base

    def test_sharded_human_report_shows_shard_row(self, capsys):
        code = main(self.ARGS + ["--workers", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "shard workers" in out
        assert "jobstate cache (hit/miss)" in out


class TestFleetSweep:
    def test_policy_axis_sweeps(self, capsys, tmp_path):
        code = main([
            "fleet", "sweep", "--models", "mllm-9b",
            "--systems", "disttrain", "--gpus", "96", "--gbs", "16",
            "--policies", "fifo", "fair-share", "--fleet-jobs", "3",
            "--job-gpus", "48", "--scenario-iterations", "20",
            "--cache-dir", str(tmp_path / "cache"), "--jobs", "1",
            "--quiet",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "fleet_policy" in out
        assert "fifo" in out and "fair-share" in out
        assert "fleet_goodput" in out

    def test_pack_axis_sweeps(self, capsys, tmp_path):
        code = main([
            "fleet", "sweep", "--models", "mllm-9b",
            "--systems", "disttrain", "--gpus", "96", "--gbs", "16",
            "--packs", "steady", "blast-radius", "--fleet-jobs", "2",
            "--scenario-iterations", "20",
            "--cache-dir", str(tmp_path / "cache"), "--jobs", "1",
            "--quiet",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "fleet_pack" in out
        assert "steady" in out and "blast-radius" in out
        assert "slo_attainment" in out
