"""Fleet results cross process and file boundaries losslessly.

Sharded execution ships specs and results over pickle pipes, and run
tooling persists :class:`FleetResult` as JSON; both boundaries must be
lossless down to the per-iteration trajectories and the realized event
trace. Pinned here: pickle round-trips of every payload that crosses
the shard pipe (job specs, scenario results, tagged capacity events)
and ``to_dict``/``from_dict``/``to_json``/``from_json`` round-trips of
the record types.
"""

import pickle

import pytest

from repro.fleet import FleetEngine, FleetJobSpec, FleetSpec
from repro.fleet.engine import FleetJobRecord, FleetResult
from repro.fleet.job import STATE_CACHE, JobSimulator
from repro.orchestration.plancache import PLAN_CACHE
from repro.scenarios import ScenarioSpec
from repro.scenarios.result import ScenarioResult

from tests.fleet.conftest import FAST_RECOVERY
from tests.fleet.test_batched_equivalence import fleet_snapshot
from tests.fleet.test_fleet_equivalence import snapshot


@pytest.fixture(scope="module")
def fleet_result(job_config):
    """One eventful fleet outcome (failures, resizes, SLO deadlines)."""
    scenario = ScenarioSpec(
        num_iterations=30,
        checkpoint_interval=10,
        mtbf_gpu_hours=30.0,
        straggler_rate=0.05,
        elastic=True,
        repair_seconds=300.0,
        seed=9,
        **FAST_RECOVERY,
    )
    spec = FleetSpec.homogeneous(
        job_config,
        cluster_gpus=96,
        num_jobs=2,
        arrival_spacing_s=100.0,
        policy="fair-share",
        scenario=scenario,
    )
    PLAN_CACHE.clear()
    STATE_CACHE.clear()
    return FleetEngine(spec).run()


class TestScenarioResult:
    def test_dict_round_trip(self, fleet_result):
        result = fleet_result.records[0].result
        clone = ScenarioResult.from_dict(result.to_dict())
        assert snapshot(clone) == snapshot(result)

    def test_pickle_round_trip(self, fleet_result):
        result = fleet_result.records[0].result
        clone = pickle.loads(pickle.dumps(result))
        assert snapshot(clone) == snapshot(result)

    def test_dict_is_json_safe(self, fleet_result):
        import json

        result = fleet_result.records[0].result
        text = json.dumps(result.to_dict())
        assert snapshot(
            ScenarioResult.from_dict(json.loads(text))
        ) == snapshot(result)


class TestFleetRecords:
    def test_record_dict_round_trip(self, fleet_result):
        for record in fleet_result.records:
            clone = FleetJobRecord.from_dict(record.to_dict())
            assert clone.row() == record.row()
            assert clone.completion_s == record.completion_s
            assert clone.ideal_demand_seconds == (
                record.ideal_demand_seconds
            )
            assert snapshot(clone.result) == snapshot(record.result)

    def test_result_pickle_round_trip(self, fleet_result):
        clone = pickle.loads(pickle.dumps(fleet_result))
        assert fleet_snapshot(clone) == fleet_snapshot(fleet_result)

    def test_result_json_round_trip(self, fleet_result):
        clone = FleetResult.from_json(fleet_result.to_json())
        assert fleet_snapshot(clone) == fleet_snapshot(fleet_result)
        # Deadlines (SLO state) survive too — `row` covers them but
        # pin it explicitly, it's what reports key off.
        assert [r.deadline_s for r in clone.records] == [
            r.deadline_s for r in fleet_result.records
        ]

    def test_result_json_file_round_trip(self, fleet_result, tmp_path):
        path = tmp_path / "fleet.json"
        fleet_result.to_json(str(path))
        clone = FleetResult.from_json(str(path))
        assert fleet_snapshot(clone) == fleet_snapshot(fleet_result)

    def test_json_is_stable(self, fleet_result):
        text = fleet_result.to_json()
        assert FleetResult.from_json(text).to_json() == text


class TestShardPipePayloads:
    """Everything the coordinator<->shard pipe carries must pickle."""

    def test_job_spec_round_trip(self, job_config):
        scenario = ScenarioSpec(
            num_iterations=10, checkpoint_interval=5, **FAST_RECOVERY
        )
        spec = FleetJobSpec(
            name="t", config=job_config, scenario=scenario,
            priority=2, arrival_s=10.0,
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.name == spec.name
        assert clone.demand_gpus == spec.demand_gpus
        assert clone.scenario.canonical() == spec.scenario.canonical()
        assert clone.config.cluster.num_gpus == (
            spec.config.cluster.num_gpus
        )

    def test_capacity_events_round_trip(self, job_config):
        """The tagged capacity-event stream a shard ships back is
        plain tuples end to end."""
        scenario = ScenarioSpec(
            num_iterations=40,
            checkpoint_interval=5,
            mtbf_gpu_hours=1.0,
            elastic=True,
            repair_seconds=120.0,
            seed=2,
            **FAST_RECOVERY,
        )
        PLAN_CACHE.clear()
        STATE_CACHE.clear()
        sim = JobSimulator(job_config, scenario)
        sim.start(48)
        events = []
        while not sim.done:
            clock = sim.clock
            sim.step()
            for seq, event in enumerate(sim.drain_fleet_events()):
                events.append(((clock, 0, 0, seq), event))
        assert events, "scenario produced no capacity events"
        assert pickle.loads(pickle.dumps(events)) == events
