"""Process-sharded fleet execution is the batched fleet, bit for bit.

``FleetEngine(spec, workers=N)`` reorders *where* steps execute, never
*what* they compute: shards advance tenants only below the coordinator's
sound completion horizon, capacity events replay in the global
``(clock, order)`` key order, and per-job plan-cache counters are
re-derived by replaying the globally-ordered consult stream against a
coordinator-side model of the shared cache. The suite here pins full
:class:`FleetResult` byte-identity against the in-process batched loop
across all three policies, stragglers, failures, arrival spacings, and
scenario packs — and that a chaos-killed shard worker is respawned,
journal-replayed, and converges to the identical result.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import DistTrainConfig
from repro.experiments import chaos
from repro.fleet import FleetEngine, FleetSpec
from repro.fleet.job import STATE_CACHE
from repro.fleet.shards import PlanCacheModel
from repro.orchestration.plancache import PLAN_CACHE
from repro.scenarios import ScenarioSpec
from repro.scenarios.packs import get_pack

from tests.fleet.conftest import FAST_RECOVERY
from tests.fleet.test_batched_equivalence import fleet_snapshot

SHARDED_SETTINGS = dict(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def cold_run(spec, workers):
    """One fleet run from cold plan *and* shared-state caches.

    A cold start matters beyond hygiene: the coordinator seeds its
    plan-cache counter model with the resident keys at run start, so
    both runs must observe the same initial cache state to be
    comparable counter-for-counter.
    """
    PLAN_CACHE.clear()
    STATE_CACHE.clear()
    return FleetEngine(spec, workers=workers).run()


def contended_spec(job_config, policy, scenario, spacing=0.0, jobs=3):
    return FleetSpec.homogeneous(
        job_config,
        cluster_gpus=96,
        num_jobs=jobs,
        arrival_spacing_s=spacing,
        priorities=(1, 0),
        policy=policy,
        scenario=scenario,
    )


# --------------------------------------------------------------------- #
# Sharded == batched, whole-result
# --------------------------------------------------------------------- #
@settings(**SHARDED_SETTINGS)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    mtbf=st.one_of(st.none(), st.floats(min_value=3.0, max_value=300.0)),
    straggler_rate=st.floats(min_value=0.0, max_value=0.1),
    spacing=st.sampled_from([0.0, 150.0]),
    policy=st.sampled_from(["fifo", "fair-share", "priority"]),
)
def test_sharded_fleet_is_batched_fleet(
    job_config, seed, mtbf, straggler_rate, spacing, policy
):
    """Full-result byte-identity under contention, failures,
    stragglers, elastic resizes, and (under priority) preemptions."""
    scenario = ScenarioSpec(
        num_iterations=40,
        checkpoint_interval=10,
        mtbf_gpu_hours=mtbf,
        straggler_rate=straggler_rate,
        elastic=True,
        repair_seconds=300.0,
        seed=seed,
        **FAST_RECOVERY,
    )
    spec = contended_spec(job_config, policy, scenario, spacing)
    reference = fleet_snapshot(cold_run(spec, workers=1))
    assert fleet_snapshot(cold_run(spec, workers=2)) == reference


def test_sharded_matches_across_worker_counts(job_config):
    """One aggressive fleet (dense failures + stragglers + staggered
    arrivals) is identical at every worker count, including workers
    exceeding half the tenants."""
    scenario = ScenarioSpec(
        num_iterations=40,
        checkpoint_interval=10,
        mtbf_gpu_hours=8.0,
        straggler_rate=0.08,
        elastic=True,
        repair_seconds=300.0,
        seed=11,
        **FAST_RECOVERY,
    )
    spec = contended_spec(
        job_config, "priority", scenario, spacing=150.0, jobs=4
    )
    reference = fleet_snapshot(cold_run(spec, workers=1))
    for workers in (2, 4):
        assert fleet_snapshot(cold_run(spec, workers=workers)) == reference


def test_sharded_pack_equivalence(job_config):
    """Scenario packs (heterogeneous job classes, correlated faults,
    SLO deadlines) survive sharding byte-identically."""
    fleet = get_pack("blast-radius").build_fleet(
        job_config, cluster_gpus=96, num_jobs=4, seed=3
    )
    reference = fleet_snapshot(cold_run(fleet, workers=1))
    assert fleet_snapshot(cold_run(fleet, workers=2)) == reference


def test_sharded_bypasses_plan_cache_identically(job_config):
    """``use_plan_cache=False`` (every consult a bypass miss) is
    replayed by the counter model exactly."""
    scenario = ScenarioSpec(
        num_iterations=30, checkpoint_interval=10, elastic=True,
        mtbf_gpu_hours=40.0, seed=2, **FAST_RECOVERY,
    )
    spec = contended_spec(job_config, "fair-share", scenario)

    def bypass_run(workers):
        PLAN_CACHE.clear()
        STATE_CACHE.clear()
        return FleetEngine(
            spec, use_plan_cache=False, workers=workers
        ).run()

    reference = fleet_snapshot(bypass_run(1))
    assert fleet_snapshot(bypass_run(2)) == reference


# --------------------------------------------------------------------- #
# Crash recovery
# --------------------------------------------------------------------- #
def test_chaos_killed_shard_converges_identically(job_config):
    """A shard worker SIGKILLed mid-round is respawned, rebuilt from
    its journal, and the run converges to the byte-identical result."""
    scenario = ScenarioSpec(
        num_iterations=30,
        checkpoint_interval=10,
        mtbf_gpu_hours=60.0,
        elastic=True,
        repair_seconds=300.0,
        seed=5,
        **FAST_RECOVERY,
    )
    spec = contended_spec(job_config, "fair-share", scenario)
    reference = fleet_snapshot(cold_run(spec, workers=1))

    # Kill every generation-0 shard worker on its first advance round;
    # respawned workers (generation 1) run clean.
    chaos.install([
        chaos.ChaosRule(action="kill", match={"command": "advance"})
    ])
    try:
        PLAN_CACHE.clear()
        STATE_CACHE.clear()
        engine = FleetEngine(spec, workers=2)
        result = engine.run()
    finally:
        chaos.uninstall()
    assert fleet_snapshot(result) == reference
    assert engine.shard_respawns >= 2  # both shards died once
    assert engine.shard_sync_bytes > 0


# --------------------------------------------------------------------- #
# Coordinator pieces
# --------------------------------------------------------------------- #
class TestPlanCacheModel:
    def test_seeded_keys_hit(self):
        model = PlanCacheModel(["a", "b"], maxsize=4)
        model.record(0, "a", bypassed=False, in_window=True)
        model.record(0, "c", bypassed=False, in_window=True)
        assert model.counts(0) == (1, 1)

    def test_fifo_eviction_matches_keyedcache(self):
        # maxsize=2: inserting a third key evicts the oldest, so a
        # later consult of the evicted key misses again.
        model = PlanCacheModel([], maxsize=2)
        for key in ("a", "b", "c"):
            model.record(0, key, bypassed=False, in_window=True)
        model.record(0, "a", bypassed=False, in_window=True)
        model.record(0, "c", bypassed=False, in_window=True)
        assert model.counts(0) == (1, 4)

    def test_bypass_is_a_miss_and_leaves_no_entry(self):
        model = PlanCacheModel([], maxsize=4)
        model.record(0, "a", bypassed=True, in_window=True)
        model.record(0, "a", bypassed=False, in_window=True)
        assert model.counts(0) == (0, 2)

    def test_out_of_window_consults_evolve_store_but_not_counts(self):
        model = PlanCacheModel([], maxsize=4)
        # The out-of-window consult counts nothing but inserts the key,
        # so the later windowed consult is a hit.
        model.record(0, "a", bypassed=False, in_window=False)
        model.record(0, "a", bypassed=False, in_window=True)
        assert model.counts(0) == (1, 0)

    def test_counts_are_per_tenant(self):
        model = PlanCacheModel([], maxsize=4)
        model.record(0, "a", bypassed=False, in_window=True)
        model.record(1, "a", bypassed=False, in_window=True)
        assert model.counts(0) == (0, 1)
        assert model.counts(1) == (1, 0)


class TestEngineSurface:
    def test_workers_clamped_to_tenant_count(self, job_config):
        scenario = ScenarioSpec(
            num_iterations=10, checkpoint_interval=5, **FAST_RECOVERY
        )
        spec = FleetSpec.homogeneous(
            job_config, cluster_gpus=96, num_jobs=2, scenario=scenario
        )
        engine = FleetEngine(spec, workers=8)
        assert engine.workers == 2

    def test_single_worker_is_in_process(self, job_config):
        scenario = ScenarioSpec(
            num_iterations=10, checkpoint_interval=5, **FAST_RECOVERY
        )
        spec = FleetSpec.homogeneous(
            job_config, cluster_gpus=96, num_jobs=2, scenario=scenario
        )
        engine = FleetEngine(spec, workers=1)
        assert not engine._sharded

    def test_sequential_mode_rejects_sharding(self, job_config):
        scenario = ScenarioSpec(
            num_iterations=10, checkpoint_interval=5, **FAST_RECOVERY
        )
        spec = FleetSpec.homogeneous(
            job_config, cluster_gpus=96, num_jobs=2, scenario=scenario
        )
        with pytest.raises(ValueError, match="batched"):
            FleetEngine(spec, batched=False, workers=2)
