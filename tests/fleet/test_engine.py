"""Behavioral tests of the multi-tenant fleet engine."""

import pytest

from repro.cluster.cluster import make_cluster
from repro.fleet import FleetEngine, FleetJobSpec, FleetSpec, run_fleet
from repro.fleet.engine import FleetSchedulingError
from repro.orchestration.plancache import PLAN_CACHE
from repro.scenarios import ScenarioSpec

from tests.fleet.conftest import FAST_RECOVERY

CALM = ScenarioSpec(num_iterations=40)


def homogeneous(
    config, policy, num_jobs=4, cluster_gpus=96, spacing=25.0,
    scenario=CALM, priorities=(0,), job_gpus=48,
):
    return FleetSpec.homogeneous(
        config,
        cluster_gpus=cluster_gpus,
        num_jobs=num_jobs,
        job_gpus=job_gpus,
        arrival_spacing_s=spacing,
        priorities=priorities,
        policy=policy,
        scenario=scenario,
    )


class TestFIFOExclusive:
    def test_admits_in_arrival_order_and_queues_overflow(self, job_config):
        result = run_fleet(homogeneous(job_config, "fifo"))
        records = result.records
        # Two 48-GPU jobs fill the 96-GPU cluster; the rest queue.
        assert records[0].queue_seconds == 0.0
        assert records[1].queue_seconds == 0.0
        assert records[2].queue_seconds > 0.0
        assert records[3].queue_seconds > 0.0
        # FIFO: starts are ordered like arrivals.
        starts = [r.start_s for r in records]
        assert starts == sorted(starts)
        # Exclusive: nobody ever ran on less than full demand.
        assert all(r.result.min_gpus == 48 for r in records)
        assert result.total_preemptions == 0

    def test_demand_capped_at_cluster(self, job_config):
        # A job demanding more than the cluster runs capped, not wedged.
        spec = homogeneous(
            job_config, "fifo", num_jobs=1, cluster_gpus=24, job_gpus=48
        )
        result = run_fleet(spec)
        assert result.records[0].result.initial_gpus == 24

    def test_over_demand_job_waits_for_the_cap_not_a_sliver(self):
        # An over-demand job on a busy cluster waits for its capped
        # demand (the whole cluster) rather than being seated forever
        # on whatever sliver happens to be free at arrival.
        from repro.core.config import DistTrainConfig

        small = DistTrainConfig.preset("mllm-9b", 16, 16)
        big = DistTrainConfig.preset("mllm-9b", 48, 16)
        spec = FleetSpec(
            cluster=make_cluster(24),
            jobs=[
                FleetJobSpec(name="small", config=small,
                             scenario=ScenarioSpec(num_iterations=20)),
                FleetJobSpec(name="big", config=big,
                             scenario=ScenarioSpec(num_iterations=20),
                             arrival_s=5.0),
            ],
            policy="fifo",
        )
        result = run_fleet(spec)
        by_name = {r.name: r for r in result.records}
        assert by_name["big"].queue_seconds > 0.0
        assert by_name["big"].start_s >= by_name["small"].completion_s
        assert by_name["big"].result.initial_gpus == 24


class TestFairShare:
    def test_no_contention_means_full_demand(self, job_config):
        result = run_fleet(
            homogeneous(job_config, "fair-share", num_jobs=2, spacing=0.0)
        )
        assert all(r.result.initial_gpus == 48 for r in result.records)
        assert all(r.queue_seconds == 0.0 for r in result.records)

    def test_contention_shrinks_shares_nobody_queues(self, job_config):
        result = run_fleet(homogeneous(job_config, "fair-share"))
        # Everyone starts immediately on a shrunken share...
        assert all(r.queue_seconds == 0.0 for r in result.records)
        # ...and early tenants were resized down when later ones arrived
        # (4 x 48 demanded on 96 GPUs -> 24 each at full contention).
        assert min(r.result.min_gpus for r in result.records) <= 24
        assert result.total_replans > 0

    def test_shrink_never_goes_below_the_declared_floor(self, job_config):
        # min_gpus is a floor the scheduler must honor: even when the
        # fair-share budget leaves a tenant a zero target, it parks at
        # its floor instead of being squeezed to one node.
        spec = FleetSpec(
            cluster=make_cluster(96),
            jobs=[
                FleetJobSpec(
                    name="guarded", config=job_config, min_gpus=24,
                    scenario=ScenarioSpec(num_iterations=80),
                ),
                FleetJobSpec(
                    name="late-big", config=job_config,
                    scenario=ScenarioSpec(num_iterations=40),
                    arrival_s=10.0,
                ),
                FleetJobSpec(
                    name="late-big2", config=job_config,
                    scenario=ScenarioSpec(num_iterations=40),
                    arrival_s=12.0,
                ),
            ],
            policy="fair-share",
        )
        result = run_fleet(spec)
        by_name = {r.name: r for r in result.records}
        assert by_name["guarded"].result.min_gpus >= 24

    def test_completions_release_capacity_to_survivors(self, job_config):
        result = run_fleet(
            homogeneous(
                job_config, "fair-share", num_jobs=3, spacing=0.0,
                scenario=ScenarioSpec(num_iterations=30),
            )
        )
        # The last finisher re-grows after its co-tenants leave.
        last = max(result.records, key=lambda r: r.completion_s)
        assert last.result.final_gpus > last.result.min_gpus


class TestPriorityPreemptive:
    def test_high_priority_preempts_low(self, job_config):
        result = run_fleet(
            homogeneous(
                job_config, "priority", num_jobs=4, spacing=25.0,
                priorities=(0, 1),  # odd arrivals outrank even ones
            )
        )
        by_name = {r.name: r for r in result.records}
        high = [by_name["job01"], by_name["job03"]]
        low = [by_name["job00"], by_name["job02"]]
        assert all(r.queue_seconds == 0.0 for r in high)
        assert result.total_preemptions >= 1
        assert sum(r.preemptions for r in low) == result.total_preemptions
        # Preempted work is replayed: the low tenants still finish all
        # their iterations.
        assert all(
            r.result.num_iterations == CALM.num_iterations
            for r in result.records
        )

    def test_low_priority_shrinks_instead_of_starving_high(self, job_config):
        # 96-GPU cluster: a 64-demand low-priority tenant must shrink
        # to 48 when a 48-demand high-priority job arrives — the high
        # job gets its full demand, not just the leftover free pool.
        from repro.core.config import DistTrainConfig

        low_config = DistTrainConfig.preset("mllm-9b", 64, 16)
        spec = FleetSpec(
            cluster=make_cluster(96),
            jobs=[
                FleetJobSpec(name="low", config=low_config, priority=0,
                             scenario=ScenarioSpec(num_iterations=60)),
                FleetJobSpec(name="high", config=job_config, priority=1,
                             scenario=ScenarioSpec(num_iterations=30),
                             arrival_s=10.0),
            ],
            policy="priority",
        )
        result = run_fleet(spec)
        by_name = {r.name: r for r in result.records}
        assert by_name["high"].queue_seconds == 0.0
        assert by_name["high"].result.initial_gpus == 48
        assert by_name["low"].preemptions == 0  # shrunk, not killed
        assert by_name["low"].result.min_gpus == 48
        assert by_name["low"].result.num_replans >= 1

    def test_preemption_rolls_back_to_durable_checkpoint(self, job_config):
        result = run_fleet(
            homogeneous(
                job_config, "priority", num_jobs=2, spacing=30.0,
                priorities=(0, 1), cluster_gpus=48,
                scenario=ScenarioSpec(
                    num_iterations=40, checkpoint_interval=10
                ),
            )
        )
        preempted = result.records[0]
        assert preempted.preemptions == 1
        assert preempted.result.replayed_iterations > 0
        assert preempted.result.lost_seconds > 0


class TestAccountingAndMetrics:
    def test_allocator_is_empty_after_run(self, job_config):
        engine = FleetEngine(homogeneous(job_config, "fair-share"))
        engine.run()
        assert engine.allocator.free_gpus == engine.allocator.total_gpus
        assert engine.allocator.owners() == []

    def test_allocator_stays_consistent_under_failures(self, job_config):
        engine = FleetEngine(
            homogeneous(
                job_config, "fair-share",
                scenario=ScenarioSpec(
                    num_iterations=60, mtbf_gpu_hours=20.0, elastic=True,
                    repair_seconds=150.0, **FAST_RECOVERY,
                ),
            )
        )
        result = engine.run()
        assert sum(r.result.num_failures for r in result.records) > 0
        assert engine.allocator.free_gpus == engine.allocator.total_gpus

    def test_scheduler_resize_releases_capacity_under_repair(
        self, job_config
    ):
        # Job A (demand 96) loses a node elastically; while its repair
        # is pending, job B arrives and fair-share shrinks A. The
        # resize supersedes A's internal re-growth, so the under-repair
        # node returns to the shared pool instead of idling reserved —
        # B gets its full fair share immediately.
        from repro.core.config import DistTrainConfig
        from repro.scenarios.events import EventTrace, FailureEvent

        big = DistTrainConfig.preset("mllm-9b", 96, 16)
        spec = FleetSpec(
            cluster=make_cluster(96),
            jobs=[
                FleetJobSpec(
                    name="a", config=big,
                    scenario=ScenarioSpec(
                        num_iterations=2000, elastic=True,
                        events=EventTrace(
                            [FailureEvent(time_s=10.0, gpus_lost=8)]
                        ),
                        repair_seconds=1e8, **FAST_RECOVERY,
                    ),
                ),
                FleetJobSpec(
                    name="b", config=job_config,
                    scenario=ScenarioSpec(num_iterations=50),
                    arrival_s=300.0,
                ),
            ],
            policy="fair-share",
        )
        engine = FleetEngine(spec)
        result = engine.run()
        by_name = {r.name: r for r in result.records}
        # B's fair share of 96 is 48; without the repair release it
        # would stay capped at 40 for its whole life (8 GPUs stranded
        # in repair until A completes — long after B).
        assert by_name["b"].result.final_gpus == 48
        assert by_name["b"].completion_s < by_name["a"].completion_s
        assert engine.allocator.free_gpus == engine.allocator.total_gpus

    def test_metrics_surface(self, job_config):
        result = run_fleet(homogeneous(job_config, "fifo", num_jobs=2))
        metrics = result.metrics()
        for key in (
            "fleet_goodput", "utilization", "makespan_seconds",
            "mean_jct_seconds", "max_jct_seconds", "mean_queue_seconds",
            "num_jobs", "num_failures", "num_replans", "preemptions",
            "fleet_tokens_per_s", "mean_goodput", "mean_mfu", "num_gpus",
        ):
            assert key in metrics
            assert isinstance(metrics[key], float)
        assert 0.0 < metrics["utilization"] <= 1.0
        assert 0.0 < metrics["fleet_goodput"] <= 1.0

    def test_cotenant_plans_amortize_through_shared_cache(self, job_config):
        PLAN_CACHE.clear()
        result = run_fleet(
            homogeneous(job_config, "fifo", num_jobs=3, spacing=0.0,
                        cluster_gpus=144)
        )
        # Identical tasks at the same size: one solve, the rest hit.
        assert result.plan_cache_misses == 1
        assert result.plan_cache_hits >= 2

    def test_infeasible_fleet_raises_scheduling_error(self):
        # A job whose floor exceeds the whole cluster can never be
        # seated: the engine reports the deadlock instead of spinning.
        from repro.core.config import DistTrainConfig

        big = DistTrainConfig.preset("mllm-9b", 96, 16)
        jobs = [
            FleetJobSpec(
                name="big",
                config=big,
                scenario=ScenarioSpec(num_iterations=2000),
                min_gpus=96,
            )
        ]
        spec = FleetSpec(
            cluster=make_cluster(48), jobs=jobs, policy="fifo"
        )
        with pytest.raises(FleetSchedulingError, match="deadlock"):
            FleetEngine(spec).run()

    def test_floor_above_demand_rejected_at_spec_time(self, job_config):
        # min_gpus > demand could never be satisfied by any grant; it
        # is a spec error, not a runtime deadlock.
        with pytest.raises(ValueError, match="exceeds the job's demand"):
            FleetJobSpec(
                name="broken", config=job_config,
                scenario=ScenarioSpec(), min_gpus=64,
            )


class TestDeadlinesAndSLO:
    def uncontended(self, job_config, **job_kwargs):
        spec = FleetSpec(
            cluster=make_cluster(96),
            jobs=[
                FleetJobSpec(
                    name="a", config=job_config, scenario=CALM,
                    **job_kwargs,
                )
            ],
            policy="fifo",
        )
        return run_fleet(spec).records[0]

    def test_no_deadline_means_full_attainment(self, job_config):
        result = run_fleet(homogeneous(job_config, "fifo", num_jobs=2))
        assert result.slo_attainment == 1.0
        assert result.deadline_misses == 0
        assert result.metrics()["slo_jobs"] == 0.0
        assert all(r.deadline_met is None for r in result.records)

    def test_generous_slo_is_met_when_uncontended(self, job_config):
        record = self.uncontended(job_config, slo_factor=2.0)
        # Alone on the cluster the job runs at its ideal: any SLO
        # factor above 1 must be met.
        assert record.deadline_s is not None
        assert record.deadline_met is True
        assert record.deadline_s == pytest.approx(
            record.arrival_s + 2.0 * record.ideal_demand_seconds
        )

    def test_absolute_deadline_wins_over_slo_factor(self, job_config):
        record = self.uncontended(
            job_config, deadline_s=123456.0, slo_factor=2.0
        )
        assert record.deadline_s == 123456.0

    def test_impossible_deadline_counts_as_miss(self, job_config):
        spec = FleetSpec(
            cluster=make_cluster(96),
            jobs=[
                FleetJobSpec(
                    name="doomed", config=job_config, scenario=CALM,
                    deadline_s=1.0,
                )
            ],
            policy="fifo",
        )
        result = run_fleet(spec)
        assert result.records[0].deadline_met is False
        assert result.deadline_misses == 1
        assert result.slo_attainment == 0.0
        metrics = result.metrics()
        assert metrics["slo_attainment"] == 0.0
        assert metrics["deadline_misses"] == 1.0
        assert metrics["slo_jobs"] == 1.0

    def test_row_carries_class_and_deadline(self, job_config):
        record = self.uncontended(
            job_config, slo_factor=3.0, job_class="prod"
        )
        row = record.row()
        assert row["job_class"] == "prod"
        assert row["deadline_met"] is True
        assert row["deadline_s"] == record.deadline_s
