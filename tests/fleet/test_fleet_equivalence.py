"""The fleet layer is transparent for a single uncontended job.

The JobSimulator extraction and the FleetEngine's scheduling machinery
must not perturb a single byte of a lone job's physics: a one-job fleet
with no contention is the standalone ``ScenarioEngine`` timeline —
metrics, per-iteration trajectories, realized event trace, and (from a
cold plan cache) even the plan hit/miss counters. Pinned three ways:

1. against the live ``ScenarioEngine`` over a hypothesis-sampled space
   of dynamics, under every scheduling policy;
2. against the checked-in golden canonical scenario fixture (hex-exact
   floats — a single ULP of drift fails);
3. under plan-cache bypass, which must change nothing but the counters.
"""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fleet import FleetEngine, FleetJobSpec, FleetSpec
from repro.orchestration.plancache import PLAN_CACHE
from repro.scenarios import ScenarioSpec
from repro.scenarios.engine import ScenarioEngine

from tests.fleet.conftest import FAST_RECOVERY
from tests.scenarios.golden.regen import GOLDEN_DIR, scenario_case

ENGINE_SETTINGS = dict(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def snapshot(result):
    """Everything a lone tenant's physics must reproduce, bit for bit."""
    return (
        result.metrics(),
        result.iteration_times.tobytes(),
        result.mfu_trajectory.tobytes(),
        [repr(e) for e in result.events],
        result.plan_cache_hits,
        result.plan_cache_misses,
        result.num_iterations,
        result.preemptions,
    )


def solo_fleet(config, scenario, policy):
    return FleetSpec(
        cluster=config.cluster,
        jobs=[FleetJobSpec(name="solo", config=config, scenario=scenario)],
        policy=policy,
    )


@settings(**ENGINE_SETTINGS)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    mtbf=st.one_of(st.none(), st.floats(min_value=2.0, max_value=300.0)),
    straggler_rate=st.floats(min_value=0.0, max_value=0.08),
    elastic=st.booleans(),
    policy=st.sampled_from(["fifo", "fair-share", "priority"]),
)
def test_single_job_fleet_is_scenario_engine(
    job_config, seed, mtbf, straggler_rate, elastic, policy
):
    spec = ScenarioSpec(
        num_iterations=60,
        checkpoint_interval=15,
        mtbf_gpu_hours=mtbf,
        straggler_rate=straggler_rate,
        elastic=elastic,
        repair_seconds=300.0,
        seed=seed,
        **FAST_RECOVERY,
    )
    PLAN_CACHE.clear()
    reference = snapshot(ScenarioEngine(job_config, spec).run())
    PLAN_CACHE.clear()
    fleet = FleetEngine(solo_fleet(job_config, spec, policy)).run()
    assert len(fleet.records) == 1
    record = fleet.records[0]
    assert snapshot(record.result) == reference
    assert record.queue_seconds == 0.0
    assert record.start_s == 0.0


@pytest.mark.parametrize("policy", ["fifo", "fair-share", "priority"])
def test_single_job_fleet_matches_golden_scenario(policy):
    """The canonical golden fixture, reproduced through the fleet."""
    fixture = json.loads(
        (GOLDEN_DIR / "scenario_canonical.json").read_text()
    )
    config, spec = scenario_case()
    result = FleetEngine(solo_fleet(config, spec, policy)).run()
    scenario = result.records[0].result
    metrics = {
        key: (value.hex() if isinstance(value, float) else value)
        for key, value in scenario.metrics().items()
    }
    assert metrics == fixture["metrics"]
    assert [
        float(t).hex() for t in scenario.iteration_times
    ] == fixture["iteration_times"]
    assert [
        float(m).hex() for m in scenario.mfu_trajectory
    ] == fixture["mfu_trajectory"]
    assert scenario.events.to_dicts() == fixture["events"]


def test_late_arrival_replays_traces_job_relative(job_config):
    """A trace recorded standalone reproduces inside a fleet even when
    the job is seated late: failure times are job-relative, so the
    physics (metrics, trajectories) are arrival-invariant."""
    from repro.scenarios.events import EventTrace, FailureEvent

    spec = ScenarioSpec(
        num_iterations=50,
        checkpoint_interval=10,
        events=EventTrace([FailureEvent(time_s=30.0, gpus_lost=8)]),
        elastic=True,
        repair_seconds=40.0,
        **FAST_RECOVERY,
    )
    standalone = ScenarioEngine(job_config, spec).run()
    fleet = FleetEngine(
        FleetSpec(
            cluster=job_config.cluster,
            jobs=[
                FleetJobSpec(
                    name="late", config=job_config, scenario=spec,
                    arrival_s=600.0,
                )
            ],
            policy="fifo",
        )
    ).run()
    record = fleet.records[0]
    assert record.start_s == 600.0
    late = record.result
    assert late.num_failures == standalone.num_failures == 1
    assert late.num_replans == standalone.num_replans
    assert late.replayed_iterations == standalone.replayed_iterations
    # Per-iteration physics are exact; clock-derived totals differ only
    # by float non-associativity of the 600 s offset (~1e-12 relative).
    assert np.array_equal(
        late.iteration_times, standalone.iteration_times
    )
    assert np.array_equal(
        late.mfu_trajectory, standalone.mfu_trajectory
    )
    reference = standalone.metrics()
    for key, value in late.metrics().items():
        assert value == pytest.approx(reference[key], rel=1e-9), key


def test_plan_cache_bypass_changes_nothing_but_counters(job_config):
    spec = ScenarioSpec(
        num_iterations=50,
        checkpoint_interval=10,
        mtbf_gpu_hours=4.0,
        elastic=True,
        repair_seconds=200.0,
        seed=9,
        **FAST_RECOVERY,
    )
    cached = FleetEngine(
        solo_fleet(job_config, spec, "fair-share"), use_plan_cache=True
    ).run()
    bypass = FleetEngine(
        solo_fleet(job_config, spec, "fair-share"), use_plan_cache=False
    ).run()
    a, b = cached.records[0].result, bypass.records[0].result
    assert a.metrics() == b.metrics()
    assert np.array_equal(a.iteration_times, b.iteration_times)
    assert a.events.to_dicts() == b.events.to_dicts()
