"""The stepping API of the extracted per-job state machine."""

import numpy as np
import pytest

from repro.fleet.job import JobSimulator
from repro.orchestration.errors import InfeasibleClusterError
from repro.scenarios import ScenarioSpec
from repro.scenarios.engine import ScenarioEngine


class TestLifecycle:
    def test_run_equals_scenario_engine(self, job_config):
        spec = ScenarioSpec(num_iterations=30)
        direct = JobSimulator(job_config, spec).run()
        wrapped = ScenarioEngine(job_config, spec).run()
        assert direct.metrics() == wrapped.metrics()
        assert np.array_equal(
            direct.iteration_times, wrapped.iteration_times
        )

    def test_stepping_is_incremental(self, job_config):
        sim = JobSimulator(job_config, ScenarioSpec(num_iterations=10))
        assert not sim.started and not sim.done
        sim.start()
        assert sim.started and sim.clock == 0.0
        seen = [sim.clock]
        while not sim.done:
            sim.step()
            seen.append(sim.clock)
            assert sim.clock >= seen[-2]  # the clock never rewinds
        assert sim.iterations_retained == 10
        result = sim.finish()
        assert result.num_iterations == 10

    def test_advance_until_stops_at_horizon(self, job_config):
        sim = JobSimulator(job_config, ScenarioSpec(num_iterations=50))
        sim.start()
        horizon = 10.0
        sim.advance_until(horizon)
        assert sim.clock >= horizon
        # Non-preemptible iterations: overshoot is less than one unit.
        assert 0 < sim.iterations_retained < 50
        sim.advance_until(float("inf"))
        assert sim.done

    def test_start_on_smaller_allocation(self, job_config):
        sim = JobSimulator(job_config, ScenarioSpec(num_iterations=8))
        sim.start(allocated_gpus=24, start_time=100.0)
        assert sim.num_gpus == 24
        while not sim.done:
            sim.step()
        result = sim.finish()
        assert result.initial_gpus == 24
        assert result.final_gpus == 24
        # total_seconds is job-relative, not absolute.
        assert result.total_seconds == pytest.approx(sim.clock - 100.0)

    def test_infeasible_allocation_raises_clearly(self):
        from repro.core.config import DistTrainConfig

        config = DistTrainConfig.preset("mllm-72b", 1296, 1920)
        sim = JobSimulator(config, ScenarioSpec(num_iterations=4))
        assert not sim.feasible(64)
        with pytest.raises(InfeasibleClusterError):
            sim.start(allocated_gpus=64)


class TestFleetControls:
    def test_apply_resize_counts_replan(self, job_config):
        sim = JobSimulator(job_config, ScenarioSpec(num_iterations=20))
        sim.start()
        sim.advance_until(5.0)
        before = sim.clock
        sim.apply_resize(40, sim.clock)
        assert sim.num_gpus == 40
        assert sim.clock == pytest.approx(
            before + sim.scenario.replan_seconds
        )
        while not sim.done:
            sim.step()
        result = sim.finish()
        assert result.num_replans == 1
        assert result.min_gpus == 40
        assert result.final_gpus == 40

    def test_preempt_resume_replays_undurable_work(self, job_config):
        spec = ScenarioSpec(num_iterations=30, checkpoint_interval=10)
        sim = JobSimulator(job_config, spec, name="victim")
        sim.start()
        sim.advance_until(40.0)
        progressed = sim.iterations_retained
        assert progressed > 10
        sim.preempt(sim.clock)
        assert sim.paused
        # Rolled back to the latest durable checkpoint: a snapshot after
        # iteration k resumes at k + 1 (0 = only the initial weights).
        assert sim.iterations_retained < progressed
        assert sim.iterations_retained % 10 in (0, 1)
        sim.resume(48, sim.clock + 500.0)
        assert not sim.paused
        while not sim.done:
            sim.step()
        result = sim.finish()
        assert result.preemptions == 1
        assert result.num_iterations == 30
        assert result.replayed_iterations > 0

    def test_resume_requires_preemption(self, job_config):
        sim = JobSimulator(job_config, ScenarioSpec(num_iterations=5))
        sim.start()
        with pytest.raises(RuntimeError, match="not preempted"):
            sim.resume(48, 0.0)

    def test_fleet_event_log_reports_capacity_changes(self, job_config):
        from repro.scenarios.events import EventTrace, FailureEvent

        spec = ScenarioSpec(
            num_iterations=40,
            elastic=True,
            events=EventTrace([FailureEvent(time_s=20.0, gpus_lost=8)]),
            repair_seconds=50.0,
            restart_seconds=10.0,
            checkpoint_load_seconds=5.0,
        )
        sim = JobSimulator(job_config, spec)
        sim.start()
        while not sim.done:
            sim.step()
        kinds = [e[0] for e in sim.drain_fleet_events()]
        assert kinds == ["failure", "grow"]
        assert sim.drain_fleet_events() == []  # drained


class TestStateCacheSizing:
    def test_target_scales_with_working_set(self):
        from repro.fleet.job import (
            STATE_CACHE,
            STATE_CACHE_CEILING,
            STATE_CACHE_FLOOR,
            resize_state_cache,
        )

        before = STATE_CACHE.maxsize
        try:
            assert resize_state_cache(1) == STATE_CACHE_FLOOR
            assert resize_state_cache(100) == 400
            assert STATE_CACHE.maxsize == 400
            assert resize_state_cache(10**6) == STATE_CACHE_CEILING
        finally:
            STATE_CACHE.resize(before)

    def test_completion_lower_bound_is_sound(self, job_config):
        """The bound never exceeds the realized completion clock — the
        invariant the sharded round protocol rests on."""
        spec = ScenarioSpec(
            num_iterations=30,
            checkpoint_interval=10,
            mtbf_gpu_hours=2.0,
            straggler_rate=0.1,
            elastic=True,
            repair_seconds=120.0,
            seed=2,
            restart_seconds=60.0,
            checkpoint_load_seconds=30.0,
        )
        sim = JobSimulator(job_config, spec)
        sim.start()
        bounds = []
        while not sim.done:
            bounds.append(sim.completion_lower_bound())
            sim.step()
        final = sim.clock
        assert all(bound <= final for bound in bounds)
        # At the final boundary the bound is exact: clock itself.
        assert bounds[-1] <= final
