"""Shared fleet-test fixtures.

Same small task as the scenario suite (9B model, 48-GPU demand, GBS
16), plus a 96-GPU shared cluster two such jobs fill exactly — the
smallest geometry where every policy's behavior (queueing, fair
shrinking, preemption) is distinguishable.
"""

import pytest

from repro.core.config import DistTrainConfig

#: Downtime-light failure settings so aggressive-MTBF tests converge.
FAST_RECOVERY = dict(restart_seconds=60.0, checkpoint_load_seconds=30.0)


@pytest.fixture(scope="session")
def job_config() -> DistTrainConfig:
    """One tenant's task: demands 48 GPUs."""
    return DistTrainConfig.preset("mllm-9b", 48, 16)
