"""Policy target computation in isolation (no engine, no simulators)."""

from repro.cluster.allocation import GPUAllocator
from repro.cluster.cluster import make_cluster
from repro.fleet.policies import (
    ElasticFairSharePolicy,
    FIFOExclusivePolicy,
    JobView,
    PriorityPreemptivePolicy,
)


def view(name, demand, held=0, running=False, priority=0, order=0):
    return JobView(
        name=name,
        demand_gpus=demand,
        min_gpus=8,
        priority=priority,
        arrival_order=order,
        allocated_gpus=held,
        running=running,
    )


def allocator(total=96, carved=()):
    alloc = GPUAllocator(make_cluster(total))
    for owner, gpus in carved:
        alloc.carve(owner, gpus)
    return alloc


class TestFIFO:
    def test_never_seats_on_a_sliver(self):
        # 8 GPUs free; the queued job's capped demand is 24 — it waits.
        targets = FIFOExclusivePolicy().targets(
            0.0,
            [
                view("a", 16, held=16, running=True, order=0),
                view("b", 48, order=1),
            ],
            allocator(24, carved=[("a", 16)]),
        )
        assert targets == {"a": 16, "b": 0}

    def test_seats_capped_demand_when_cluster_is_free(self):
        targets = FIFOExclusivePolicy().targets(
            0.0, [view("b", 48)], allocator(24)
        )
        assert targets == {"b": 24}

    def test_head_of_line_blocking(self):
        # A later small arrival may not jump past a blocked head job —
        # that would let a stream of small jobs starve a big one.
        targets = FIFOExclusivePolicy().targets(
            0.0,
            [
                view("running", 48, held=48, running=True, order=0),
                view("big", 96, order=1),
                view("small", 24, order=2),
            ],
            allocator(96, carved=[("running", 48)]),
        )
        assert targets == {"running": 48, "big": 0, "small": 0}


class TestFairShare:
    def test_equal_demands_split_evenly(self):
        targets = ElasticFairSharePolicy().targets(
            0.0,
            [view(f"j{i}", 48, order=i) for i in range(4)],
            allocator(96),
        )
        assert all(t == 24 for t in targets.values())

    def test_max_min_equalizes_allocations_not_deficits(self):
        # A 96-demand whale next to a 48-demand job: max-min gives the
        # small job its near-even share instead of feeding the whale's
        # larger deficit.
        targets = ElasticFairSharePolicy().targets(
            0.0,
            [view("whale", 96, order=0), view("small", 48, order=1)],
            allocator(88),
        )
        assert targets["small"] == 40
        assert targets["whale"] == 48

    def test_satisfied_jobs_cede_leftovers(self):
        targets = ElasticFairSharePolicy().targets(
            0.0,
            [view("a", 16, order=0), view("b", 96, order=1)],
            allocator(96),
        )
        assert targets == {"a": 16, "b": 80}


class TestPriority:
    def test_high_takes_demand_low_shrinks(self):
        targets = PriorityPreemptivePolicy().targets(
            0.0,
            [
                view("low", 64, held=64, running=True, priority=0, order=0),
                view("high", 48, priority=1, order=1),
            ],
            allocator(96, carved=[("low", 64)]),
        )
        assert targets == {"high": 48, "low": 48}

    def test_low_preempted_when_nothing_remains(self):
        targets = PriorityPreemptivePolicy().targets(
            0.0,
            [
                view("low", 48, held=48, running=True, priority=0, order=0),
                view("high", 48, priority=1, order=1),
            ],
            allocator(48, carved=[("low", 48)]),
        )
        assert targets == {"high": 48, "low": 0}

    def test_ties_break_by_arrival(self):
        targets = PriorityPreemptivePolicy().targets(
            0.0,
            [
                view("late", 48, priority=1, order=1),
                view("early", 48, priority=1, order=0),
            ],
            allocator(48),
        )
        assert targets == {"early": 48, "late": 0}
