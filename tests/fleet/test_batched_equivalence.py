"""The batched fleet path is the sequential fleet path, bit for bit.

``FleetEngine(batched=True)`` reorders *work*, never *results*: the
indexed event heap pops tenants in exactly the total order the linear
scan minimizes, shared cluster states are pure functions of
``(task, size, samples)``, and fused cross-tenant pricing pre-fills the
same memo entries each tenant's own step would have computed. The
hypothesis suite here pins full :class:`FleetResult` byte-identity
against the sequential reference loop across all three policies, and
the unit tests pin the pieces (prepare/price/commit split, fused
pricing memo semantics).

Alongside ride the fleet-clock regression tests this PR's bugfixes
demand: the wedged-fleet reschedule must replay the *latest* decision
clock (completions included, not just arrivals), and the
``ideal_demand_seconds`` walk-down must price an infeasible capped
demand at the largest feasible size below it.
"""

from typing import Dict, List

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster.allocation import GPUAllocator
from repro.core.config import DistTrainConfig
from repro.fleet import FleetEngine, FleetJobSpec, FleetSpec
from repro.fleet.job import (
    STATE_CACHE,
    JobSimulator,
    price_pending_steps,
)
from repro.fleet.policies import JobView, SchedulingPolicy
from repro.orchestration.plancache import PLAN_CACHE
from repro.scenarios import ScenarioSpec

from tests.fleet.conftest import FAST_RECOVERY
from tests.fleet.test_fleet_equivalence import ENGINE_SETTINGS, snapshot


def fleet_snapshot(result):
    """Everything a FleetResult must reproduce across engine modes."""
    return (
        result.policy,
        result.total_gpus,
        result.metrics(),
        [
            (
                r.name,
                r.demand_gpus,
                r.priority,
                r.arrival_s,
                r.start_s,
                r.completion_s,
                r.queue_seconds,
                r.preemptions,
                r.ideal_demand_seconds,
                snapshot(r.result),
            )
            for r in result.records
        ],
    )


def cold_run(spec, batched):
    """One fleet run from cold plan *and* shared-state caches."""
    PLAN_CACHE.clear()
    STATE_CACHE.clear()
    return FleetEngine(spec, batched=batched).run()


# --------------------------------------------------------------------- #
# Batched == sequential, whole-result
# --------------------------------------------------------------------- #
@settings(**ENGINE_SETTINGS)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    mtbf=st.one_of(st.none(), st.floats(min_value=3.0, max_value=300.0)),
    straggler_rate=st.floats(min_value=0.0, max_value=0.1),
    spacing=st.sampled_from([0.0, 150.0]),
    policy=st.sampled_from(["fifo", "fair-share", "priority"]),
)
def test_batched_fleet_is_sequential_fleet(
    job_config, seed, mtbf, straggler_rate, spacing, policy
):
    """Full-result byte-identity under contention, failures, stragglers,
    elastic resizes, and (under priority) preemptions."""
    scenario = ScenarioSpec(
        num_iterations=40,
        checkpoint_interval=10,
        mtbf_gpu_hours=mtbf,
        straggler_rate=straggler_rate,
        elastic=True,
        repair_seconds=300.0,
        seed=seed,
        **FAST_RECOVERY,
    )
    spec = FleetSpec.homogeneous(
        job_config,
        cluster_gpus=96,
        num_jobs=3,
        arrival_spacing_s=spacing,
        priorities=(1, 0),
        policy=policy,
        scenario=scenario,
    )
    reference = fleet_snapshot(cold_run(spec, batched=False))
    assert fleet_snapshot(cold_run(spec, batched=True)) == reference


def test_state_sharing_disabled_under_plan_cache_bypass(job_config):
    """``use_plan_cache=False`` promises a fully private search per
    tenant; the batched engine must not share states through it."""
    scenario = ScenarioSpec(
        num_iterations=30, checkpoint_interval=10, **FAST_RECOVERY
    )
    spec = FleetSpec.homogeneous(
        job_config, cluster_gpus=96, num_jobs=2, scenario=scenario
    )
    engine = FleetEngine(spec, use_plan_cache=False, batched=True)
    assert all(not t.sim.share_states for t in engine._tenants)
    result = engine.run()
    # Every tenant searched privately: no hits, only its own misses...
    assert result.plan_cache_hits == 0
    assert all(r.result.plan_cache_misses >= 1 for r in result.records)
    # ...and the cluster states it built are its own objects.
    first, second = engine._tenants
    shared_sizes = set(first.sim._states) & set(second.sim._states)
    assert shared_sizes
    assert all(
        first.sim._states[size] is not second.sim._states[size]
        for size in shared_sizes
    )


# --------------------------------------------------------------------- #
# prepare_step / price / commit_step
# --------------------------------------------------------------------- #
def test_prepare_price_commit_is_step(job_config):
    """Driving a job via the split (gather, fused-price, commit) walks
    the identical timeline as plain step(), including straggler ticks,
    failures, and elastic resizes."""
    scenario = ScenarioSpec(
        num_iterations=60,
        checkpoint_interval=15,
        mtbf_gpu_hours=6.0,
        straggler_rate=0.2,
        elastic=True,
        repair_seconds=300.0,
        seed=11,
        **FAST_RECOVERY,
    )
    PLAN_CACHE.clear()
    STATE_CACHE.clear()
    split = JobSimulator(job_config, scenario)
    plain = JobSimulator(job_config, scenario)
    split.start(48)
    plain.start(48)
    priced = 0
    while not split.done:
        item = split.prepare_step()
        if item is not None:
            assert (item.sample, item.profile) not in item.state.evaluations
            # Duplicates are deduplicated, already-memoized items skipped.
            price_pending_steps([item, item])
            assert (item.sample, item.profile) in item.state.evaluations
            assert split.prepare_step() is None  # now memoized
            priced += 1
        split.commit_step()
        plain.step()
        assert split.clock == plain.clock
    assert priced > 0, "scenario never exercised fused pricing"
    while not plain.done:
        plain.step()
    split_result, plain_result = split.finish(), plain.finish()

    def physics(result):
        # Everything but the plan hit/miss counters: the two sims share
        # the process-wide plan cache, so whichever requests a size
        # first takes the miss the other then hits.
        return (
            result.metrics(),
            result.iteration_times.tobytes(),
            result.mfu_trajectory.tobytes(),
            [repr(e) for e in result.events],
            result.num_iterations,
            result.preemptions,
        )

    assert physics(split_result) == physics(plain_result)
    assert (
        split_result.plan_cache_hits + split_result.plan_cache_misses
        == plain_result.plan_cache_hits + plain_result.plan_cache_misses
    )


def test_prepare_step_none_outside_running_window(job_config):
    scenario = ScenarioSpec(
        num_iterations=5, checkpoint_interval=5, **FAST_RECOVERY
    )
    sim = JobSimulator(job_config, scenario)
    assert sim.prepare_step() is None  # not started
    sim.start(48)
    while not sim.done:
        sim.step()
    assert sim.prepare_step() is None  # done


def test_prepare_step_none_while_paused(job_config):
    scenario = ScenarioSpec(
        num_iterations=20, checkpoint_interval=5, **FAST_RECOVERY
    )
    sim = JobSimulator(job_config, scenario)
    sim.start(48)
    sim.step()
    sim.preempt(sim.clock)
    assert sim.prepare_step() is None


# --------------------------------------------------------------------- #
# Wedged-fleet clock regression (stale last_decision bugfix)
# --------------------------------------------------------------------- #
class HoldbackPolicy(SchedulingPolicy):
    """Stateful policy that refuses to seat any waiter until its third
    decision round: round 1 (arrival) seats only the head job, round 2
    (that job's completion) still refuses, so the fleet wedges and the
    engine's wedged-branch reschedule (round 3) must seat the waiter at
    the *completion* clock — the decision that freed the capacity — not
    at some stale earlier arrival's.
    """

    name = "holdback"

    def __init__(self) -> None:
        self.calls = 0

    def targets(
        self, now: float, jobs: List[JobView], allocator: GPUAllocator
    ) -> Dict[str, int]:
        self.calls += 1
        out: Dict[str, int] = {}
        free = allocator.free_gpus
        for index, job in enumerate(sorted(jobs, key=lambda j: j.fifo_key)):
            if job.running:
                out[job.name] = job.allocated_gpus
            elif index == 0 or self.calls >= 3:
                grant = min(job.demand_gpus, free)
                out[job.name] = grant
                free -= grant
            else:
                out[job.name] = 0
        return out


@pytest.mark.parametrize("batched", [False, True])
def test_wedged_reschedule_replays_latest_decision_clock(
    job_config, batched
):
    scenario = ScenarioSpec(
        num_iterations=20, checkpoint_interval=5, **FAST_RECOVERY
    )
    spec = FleetSpec(
        cluster=job_config.cluster,
        jobs=[
            FleetJobSpec(name="head", config=job_config, scenario=scenario),
            FleetJobSpec(name="held", config=job_config, scenario=scenario),
        ],
        policy=HoldbackPolicy(),
    )
    # Instance policies are accepted and canonicalize by name.
    assert spec.canonical()["policy"] == "holdback"
    result = cold_run(spec, batched=batched)
    head, held = result.records
    assert head.completion_s > 0.0
    # The held job was seated by the wedged-branch reschedule, which
    # must run at the completion that freed the cluster — before the
    # fix it replayed the last *arrival* clock (here 0.0), granting the
    # waiter an impossible start in the past and zero queue time.
    assert held.start_s == head.completion_s
    assert held.queue_seconds == held.start_s - held.arrival_s
    assert held.completion_s > head.completion_s


def test_fleet_spec_rejects_unknown_policy_values(job_config):
    scenario = ScenarioSpec(num_iterations=5)
    with pytest.raises(ValueError, match="unknown scheduling policy"):
        FleetSpec(
            cluster=job_config.cluster,
            jobs=[FleetJobSpec(name="j", config=job_config,
                               scenario=scenario)],
            policy="shortest-job-first",
        )


# --------------------------------------------------------------------- #
# ideal_demand_seconds walk-down (infeasible capped demand bugfix)
# --------------------------------------------------------------------- #
def test_ideal_demand_walks_down_from_infeasible_cap():
    """A 72B tenant demanding 72 GPUs on a 64-GPU cluster: the capped
    demand (64) admits no feasible orchestration for this model while
    56 does, so the goodput numerator must be priced at 56 — before the
    fix it silently fell back to the ideal at the *initially granted*
    slice, flattering any job admitted on a small share."""
    big = DistTrainConfig.preset("mllm-72b", 72, 16)
    small = DistTrainConfig.preset("mllm-9b", 24, 16)
    spec = FleetSpec(
        cluster=DistTrainConfig.preset("mllm-9b", 64, 16).cluster,
        jobs=[
            FleetJobSpec(
                name="big",
                config=big,
                scenario=ScenarioSpec(
                    num_iterations=12, checkpoint_interval=6,
                    **FAST_RECOVERY,
                ),
                min_gpus=40,
            ),
            FleetJobSpec(
                name="small",
                config=small,
                scenario=ScenarioSpec(
                    num_iterations=4, checkpoint_interval=4,
                    **FAST_RECOVERY,
                ),
            ),
        ],
        policy="fair-share",
    )
    result = cold_run(spec, batched=True)
    record = {r.name: r for r in result.records}["big"]
    engine = FleetEngine(spec)
    probe = engine._tenants[0].sim
    assert not probe.feasible(64), "fixture drifted: 64 became feasible"
    assert probe.feasible(56)
    # Priced at the largest feasible size below the infeasible cap...
    assert record.ideal_demand_seconds == probe.ideal_seconds_at(56)
    # ...which is *not* the per-job ideal at the granted slice: the
    # co-tenant squeezed the big job to its 40-GPU floor at admission,
    # and before the fix the fallback reported that flattered ideal.
    assert record.result.initial_gpus == 40
    assert record.ideal_demand_seconds != record.result.ideal_seconds
