"""Benchmark-guard behavior: a tracked name can never silently vanish.

The guard script is plain (not a package); load it by file path. The
expensive calibration workload is stubbed out — these tests pin the
bookkeeping, not machine speed.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

GUARD_PATH = (
    Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "check_regression.py"
)


@pytest.fixture()
def guard(monkeypatch):
    spec = importlib.util.spec_from_file_location(
        "check_regression_under_test", GUARD_PATH
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.setattr(module, "calibration_score", lambda repeats=5: 1.0)
    return module


def write_report(path: Path, means: dict) -> Path:
    path.write_text(json.dumps({
        "benchmarks": [
            {"name": f"benchmarks/x.py::{name}", "stats": {"mean": mean}}
            for name, mean in means.items()
        ]
    }))
    return path


def full_means(guard, value: float = 0.01) -> dict:
    return {name: value for name in guard.TRACKED}


class TestKExpression:
    def test_brackets_stripped_and_deduplicated(self, guard):
        expr = guard.k_expression()
        assert "[" not in expr and "]" not in expr
        terms = expr.split(" or ")
        assert len(terms) == len(set(terms))
        # Every tracked name is selectable through its base term.
        for name in guard.TRACKED:
            assert name.split("[", 1)[0] in terms

    def test_print_k_flag(self, guard, capsys):
        assert guard.main(["--print-k"]) == 0
        assert capsys.readouterr().out.strip() == guard.k_expression()


class TestMissingNamesFailLoudly:
    def test_report_missing_tracked_benchmark(self, guard, tmp_path):
        means = full_means(guard)
        means.pop(guard.TRACKED[0])
        report = write_report(tmp_path / "r.json", means)
        baseline = tmp_path / "b.json"
        baseline.write_text(json.dumps({
            "calibration_seconds": 1.0,
            "means_seconds": full_means(guard),
        }))
        assert guard.main(
            [str(report), "--baseline", str(baseline)]
        ) == 2

    def test_baseline_missing_tracked_benchmark(self, guard, tmp_path, capsys):
        report = write_report(tmp_path / "r.json", full_means(guard))
        stale = full_means(guard)
        stale.pop(guard.TRACKED[-1])
        baseline = tmp_path / "b.json"
        baseline.write_text(json.dumps({
            "calibration_seconds": 1.0,
            "means_seconds": stale,
        }))
        assert guard.main(
            [str(report), "--baseline", str(baseline)]
        ) == 2
        assert "re-bless" in capsys.readouterr().err

    def test_update_rejects_partial_report(self, guard, tmp_path):
        means = full_means(guard)
        means.pop(guard.TRACKED[0])
        report = write_report(tmp_path / "r.json", means)
        assert guard.main(
            [str(report), "--baseline", str(tmp_path / "b.json"),
             "--update"]
        ) == 2


class TestCheckAndUpdate:
    def test_roundtrip_within_budget(self, guard, tmp_path):
        report = write_report(tmp_path / "r.json", full_means(guard))
        baseline = tmp_path / "b.json"
        assert guard.main(
            [str(report), "--baseline", str(baseline), "--update"]
        ) == 0
        assert guard.main([str(report), "--baseline", str(baseline)]) == 0

    def test_regression_detected(self, guard, tmp_path):
        baseline = tmp_path / "b.json"
        write_report(tmp_path / "base.json", full_means(guard, 0.01))
        assert guard.main(
            [str(tmp_path / "base.json"), "--baseline", str(baseline),
             "--update"]
        ) == 0
        slow = write_report(
            tmp_path / "slow.json", full_means(guard, 0.02)
        )
        assert guard.main([str(slow), "--baseline", str(baseline)]) == 1

    def test_update_takes_worst_envelope(self, guard, tmp_path):
        fast = write_report(tmp_path / "f.json", full_means(guard, 0.01))
        slow = write_report(tmp_path / "s.json", full_means(guard, 0.03))
        baseline = tmp_path / "b.json"
        assert guard.main(
            [str(fast), str(slow), "--baseline", str(baseline), "--update"]
        ) == 0
        blessed = json.loads(baseline.read_text())
        assert all(
            mean == 0.03 for mean in blessed["means_seconds"].values()
        )
