"""Table 2 LLM backbone configurations."""

import pytest

from repro.models.base import ModuleWorkload
from repro.models.llm import LLAMA3_7B, LLAMA3_13B, LLAMA3_70B, LLM_PRESETS

# Table 2 of the paper, verbatim.
TABLE_2 = {
    "llama3-7b": (32, 4096, 11008, 32, 32),
    "llama3-13b": (40, 5120, 13824, 40, 40),
    "llama3-70b": (80, 8192, 28672, 64, 8),
}


@pytest.mark.parametrize("name", sorted(TABLE_2))
def test_table2_configuration(name):
    spec = LLM_PRESETS[name]
    layers, hidden, ffn, heads, groups = TABLE_2[name]
    assert spec.config.num_layers == layers
    assert spec.config.hidden_size == hidden
    assert spec.config.ffn_hidden_size == ffn
    assert spec.config.num_heads == heads
    assert spec.config.groups == groups


@pytest.mark.parametrize(
    "spec,low,high",
    [(LLAMA3_7B, 6e9, 9e9), (LLAMA3_13B, 12e9, 16e9), (LLAMA3_70B, 65e9, 75e9)],
)
def test_param_counts_near_nominal(spec, low, high):
    assert low < spec.param_count() < high


def test_gqa_shrinks_70b_attention():
    per_layer_70b = LLAMA3_70B.config.attention_params_per_layer()
    # Without GQA the K/V projections would be full width.
    full = 4 * 8192 * 8192
    assert per_layer_70b < full


def test_llm_flops_independent_of_modality_mix():
    """The LLM sees fixed-length sequences; image/text mix is irrelevant
    (section 2.3: all LLM microbatches cost the same)."""
    a = ModuleWorkload(samples=2, text_tokens=100, image_tokens=8000)
    b = ModuleWorkload(samples=2, text_tokens=8000, image_tokens=100)
    assert LLAMA3_7B.forward_flops(a) == LLAMA3_7B.forward_flops(b)


def test_flops_linear_in_samples():
    one = LLAMA3_7B.forward_flops(ModuleWorkload(samples=1))
    four = LLAMA3_7B.forward_flops(ModuleWorkload(samples=4))
    assert four == pytest.approx(4 * one)


def test_backward_double_forward():
    w = ModuleWorkload(samples=1)
    assert LLAMA3_7B.backward_flops(w) == pytest.approx(
        2 * LLAMA3_7B.forward_flops(w)
    )
    assert LLAMA3_7B.backward_flops(w, weight_grads=False) == pytest.approx(
        LLAMA3_7B.forward_flops(w)
    )


def test_boundary_activation_bytes():
    expected = 2.0 * 3 * 8192 * 4096
    assert LLAMA3_7B.boundary_activation_bytes(3) == pytest.approx(expected)


def test_requires_config():
    from repro.models.llm import LLMSpec

    with pytest.raises(ValueError):
        LLMSpec(name="bad", config=None)
