"""ViT modality encoder tests."""

import pytest

from repro.models.base import ModuleKind, ModuleWorkload
from repro.models.vit import VIT_HUGE, VIT_LARGE


class TestParams:
    def test_vit_huge_is_0_63b(self):
        # The paper states ViT-Huge is 0.63B parameters.
        assert 0.6e9 < VIT_HUGE.param_count() < 0.68e9

    def test_vit_large_smaller(self):
        assert VIT_LARGE.param_count() < VIT_HUGE.param_count()

    def test_kind(self):
        assert VIT_HUGE.kind is ModuleKind.ENCODER


class TestTokens:
    def test_tokens_for_512(self):
        assert VIT_HUGE.tokens_for_resolution(512) == 1024

    def test_tokens_for_1024(self):
        assert VIT_HUGE.tokens_for_resolution(1024) == 4096

    def test_non_divisible_resolution_rejected(self):
        with pytest.raises(ValueError):
            VIT_HUGE.tokens_for_resolution(500)


class TestFlops:
    def test_zero_images_zero_flops(self):
        assert VIT_HUGE.forward_flops(ModuleWorkload(samples=1)) == 0.0

    def test_flops_roughly_2_params_per_token(self):
        w = ModuleWorkload(samples=1, image_tokens=1024, images=1)
        flops = VIT_HUGE.forward_flops(w)
        lower = 2.0 * VIT_HUGE.config.total_params() * 1024
        assert flops > lower  # attention adds on top of the GEMMs
        assert flops < 2.0 * lower

    def test_flops_scale_superlinearly_with_resolution(self):
        """Bigger images mean more tokens *and* longer attention spans."""
        small = VIT_HUGE.forward_flops(
            ModuleWorkload(samples=1, image_tokens=1024, images=1)
        )
        large = VIT_HUGE.forward_flops(
            ModuleWorkload(samples=1, image_tokens=4096, images=1)
        )
        assert large > 4 * small

    def test_flops_linear_in_image_count_at_fixed_resolution(self):
        one = VIT_HUGE.forward_flops(
            ModuleWorkload(samples=1, image_tokens=1024, images=1)
        )
        four = VIT_HUGE.forward_flops(
            ModuleWorkload(samples=1, image_tokens=4096, images=4)
        )
        assert four == pytest.approx(4 * one, rel=1e-6)


class TestMemory:
    def test_activation_bytes_positive(self):
        w = ModuleWorkload(samples=1, image_tokens=2048, images=2)
        assert VIT_HUGE.activation_bytes(w) > 0

    def test_boundary_bytes(self):
        assert VIT_HUGE.boundary_activation_bytes(1000) == pytest.approx(
            2.0 * 1000 * 1280
        )
