"""Projector module tests."""

import pytest

from repro.models.base import ModuleWorkload
from repro.models.projector import ProjectorSpec, mlp_projector


class TestProjector:
    def test_single_linear_params(self):
        p = ProjectorSpec(in_dim=10, out_dim=20)
        assert p.param_count() == 200

    def test_mlp_params(self):
        p = ProjectorSpec(in_dim=10, out_dim=20, hidden_dim=40)
        assert p.param_count() == 10 * 40 + 40 * 20

    def test_cross_attention_adds_params(self):
        base = ProjectorSpec(in_dim=10, out_dim=20)
        xattn = ProjectorSpec(in_dim=10, out_dim=20, use_cross_attention=True)
        assert xattn.param_count() == base.param_count() + 4 * 20 * 20

    def test_flops_linear_in_tokens(self):
        p = mlp_projector(1280, 4096)
        w1 = ModuleWorkload(samples=1, image_tokens=100, images=1)
        w2 = ModuleWorkload(samples=1, image_tokens=300, images=1)
        assert p.forward_flops(w2) == pytest.approx(3 * p.forward_flops(w1))

    def test_mlp_projector_helper(self):
        p = mlp_projector(1280, 4096, name="ip")
        assert p.name == "ip"
        assert p.hidden_dim == 2 * 4096

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            ProjectorSpec(in_dim=0, out_dim=10)

    def test_num_layers_one(self):
        assert mlp_projector(8, 8).num_layers == 1
