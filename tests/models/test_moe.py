"""Mixture-of-experts backbone tests (EP support, section 4.1)."""

import pytest

from repro.models.base import ModuleWorkload
from repro.models.llm import LLAMA3_7B
from repro.models.moe import LLAMA3_MOE_8X7B, MoEConfig, MoELLMSpec

W = ModuleWorkload(samples=1)


class TestConfigValidation:
    def test_needs_experts(self):
        with pytest.raises(ValueError):
            MoEConfig(num_experts=1)

    def test_top_k_bounds(self):
        with pytest.raises(ValueError):
            MoEConfig(num_experts=4, top_k=5)
        with pytest.raises(ValueError):
            MoEConfig(num_experts=4, top_k=0)

    def test_spec_requires_moe_config(self):
        with pytest.raises(ValueError):
            MoELLMSpec(name="bad", config=LLAMA3_7B.config, moe=None)


class TestParams:
    def test_total_vs_active(self):
        total = LLAMA3_MOE_8X7B.param_count()
        active = LLAMA3_MOE_8X7B.active_param_count()
        assert active < total
        # 8 experts / top-2: Mixtral-like ~38B total, ~12B active.
        assert 33e9 < total < 45e9
        assert 10e9 < active < 14e9

    def test_more_experts_more_params(self):
        wide = MoELLMSpec(
            name="16x",
            config=LLAMA3_MOE_8X7B.config,
            moe=MoEConfig(num_experts=16, top_k=2),
        )
        assert wide.param_count() > LLAMA3_MOE_8X7B.param_count()
        assert wide.active_param_count() == pytest.approx(
            LLAMA3_MOE_8X7B.active_param_count()
            + 8 * LLAMA3_MOE_8X7B.config.hidden_size * 32,
            rel=0.01,
        )  # only routers grow

    def test_stride_reduces_moe_layers(self):
        sparse = MoELLMSpec(
            name="stride2",
            config=LLAMA3_MOE_8X7B.config,
            moe=MoEConfig(num_experts=8, top_k=2, moe_layer_stride=2),
        )
        assert sparse.num_moe_layers == 16
        assert sparse.num_dense_layers == 16
        assert sparse.param_count() < LLAMA3_MOE_8X7B.param_count()


class TestFlops:
    def test_compute_tracks_active_params(self):
        """MoE forward costs roughly active/dense times the dense 7B."""
        moe = LLAMA3_MOE_8X7B.forward_flops(W)
        dense = LLAMA3_7B.forward_flops(W)
        ratio = moe / dense
        expected = (
            LLAMA3_MOE_8X7B.active_param_count() / LLAMA3_7B.param_count()
        )
        assert ratio == pytest.approx(expected, rel=0.15)

    def test_dispatch_bytes_scale_with_top_k(self):
        top1 = MoELLMSpec(
            name="top1",
            config=LLAMA3_MOE_8X7B.config,
            moe=MoEConfig(num_experts=8, top_k=1),
        )
        assert LLAMA3_MOE_8X7B.expert_dispatch_bytes_forward(
            W
        ) == pytest.approx(2 * top1.expert_dispatch_bytes_forward(W))


class TestEPCostModel:
    def test_ep_splits_compute_and_adds_a2a(self):
        from repro.cluster.node import AMPERE_NODE
        from repro.timing.costmodel import ModuleCostModel

        cm = ModuleCostModel(LLAMA3_MOE_8X7B, AMPERE_NODE)
        t1 = cm.forward_time(W, tp=1, ep=1)
        t8 = cm.forward_time(W, tp=1, ep=8)
        assert t8 < t1  # compute split wins
        assert cm.ep_comm_time(W, 8) > 0
        assert cm.ep_comm_time(W, 1) == 0.0

    def test_dense_module_has_no_ep_comm(self):
        from repro.cluster.node import AMPERE_NODE
        from repro.timing.costmodel import ModuleCostModel

        cm = ModuleCostModel(LLAMA3_7B, AMPERE_NODE)
        assert cm.ep_comm_time(W, 8) == 0.0

    def test_default_ep_applied(self):
        from repro.cluster.node import AMPERE_NODE
        from repro.timing.costmodel import ModuleCostModel

        bound = ModuleCostModel(LLAMA3_MOE_8X7B, AMPERE_NODE, ep=8)
        unbound = ModuleCostModel(LLAMA3_MOE_8X7B, AMPERE_NODE)
        assert bound.forward_time(W, tp=1) == pytest.approx(
            unbound.forward_time(W, tp=1, ep=8)
        )


class TestEPPlans:
    def test_ep_counts_toward_gpus(self):
        from repro.parallelism.plan import ParallelismPlan

        plan = ParallelismPlan(tp=1, ep=8, pp=4, dp=2)
        assert plan.num_gpus == 64
        assert plan.intra_layer_width == 8
        assert "EP=8" in plan.describe()

    def test_unit_rank_math_with_ep(self):
        from repro.parallelism.plan import ParallelismPlan
        from repro.parallelism.unit import ParallelismUnit

        unit = ParallelismUnit(
            "llm", LLAMA3_MOE_8X7B, ParallelismPlan(tp=1, ep=4, pp=2, dp=2)
        )
        assert unit.num_gpus == 16
        for local in range(unit.num_gpus):
            pp, dp, tp = unit.coords(local)
            assert unit.rank_of(pp, dp, tp) == local

    def test_orchestration_with_ep(self):
        from repro.cluster.cluster import make_cluster
        from repro.data.synthetic import SyntheticMultimodalDataset
        from repro.models.mllm import MLLM_MOE_40B
        from repro.orchestration.adaptive import AdaptiveOrchestrator
        from repro.orchestration.problem import (
            OrchestrationProblem,
            SampleProfile,
        )

        profile = SampleProfile.from_samples(
            SyntheticMultimodalDataset(seed=1).take(64)
        )
        problem = OrchestrationProblem(
            mllm=MLLM_MOE_40B,
            cluster=make_cluster(96),
            global_batch_size=32,
            profile=profile,
            llm_ep=8,
            tp_candidates=(1,),
        )
        result = AdaptiveOrchestrator(problem).plan()
        assert result.plan.plans["llm"].ep == 8
        assert result.plan.num_gpus <= 96
