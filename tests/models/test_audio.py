"""Audio modality module tests."""

import pytest

from repro.models.audio import (
    AUDIO_LDM,
    BEATS_BASE,
    BEATS_LARGE,
    AudioLDMSpec,
    BeatsSpec,
)
from repro.models.base import ModuleKind, ModuleWorkload


def audio_workload(clips=2, seconds=10):
    tokens = BEATS_BASE.tokens_for_duration(seconds) * clips
    return ModuleWorkload(samples=1, audio_tokens=tokens, audio_clips=clips)


class TestBeats:
    def test_base_param_count(self):
        # BEATs-base is ~90M parameters.
        assert 80e6 < BEATS_BASE.param_count() < 110e6

    def test_large_bigger(self):
        assert BEATS_LARGE.param_count() > 3 * BEATS_BASE.param_count()

    def test_kind(self):
        assert BEATS_BASE.kind is ModuleKind.ENCODER

    def test_tokens_for_duration(self):
        assert BEATS_BASE.tokens_for_duration(10) == 500
        with pytest.raises(ValueError):
            BEATS_BASE.tokens_for_duration(0)

    def test_zero_audio_zero_flops(self):
        assert BEATS_BASE.forward_flops(ModuleWorkload(samples=1)) == 0.0

    def test_flops_scale_with_tokens(self):
        short = BEATS_BASE.forward_flops(audio_workload(clips=1, seconds=5))
        long = BEATS_BASE.forward_flops(audio_workload(clips=1, seconds=20))
        assert long > 3.5 * short

    def test_requires_config(self):
        with pytest.raises(ValueError):
            BeatsSpec(name="bad", config=None)


class TestAudioLDM:
    def test_smaller_than_sd(self):
        from repro.models.diffusion import STABLE_DIFFUSION_2_1

        assert AUDIO_LDM.param_count() < STABLE_DIFFUSION_2_1.param_count()

    def test_flops_driven_by_audio_tokens(self):
        silent = ModuleWorkload(samples=1)
        speaking = audio_workload()
        assert AUDIO_LDM.forward_flops(silent) == 0.0
        assert AUDIO_LDM.forward_flops(speaking) > 0.0

    def test_flops_linear_in_clips(self):
        one = AUDIO_LDM.forward_flops(audio_workload(clips=1))
        three = AUDIO_LDM.forward_flops(
            ModuleWorkload(
                samples=1,
                audio_tokens=3 * BEATS_BASE.tokens_for_duration(10),
                audio_clips=3,
            )
        )
        assert three == pytest.approx(3 * one, rel=1e-6)


class TestCostModelIntegration:
    def test_audio_encoder_cost(self):
        from repro.cluster.node import AMPERE_NODE
        from repro.timing.costmodel import ModuleCostModel

        cost = ModuleCostModel(BEATS_BASE, AMPERE_NODE)
        t = cost.forward_time(audio_workload(), tp=1)
        assert 0 < t < 0.1  # ~100M model on short clips: milliseconds

    def test_audio_generator_cost(self):
        from repro.cluster.node import AMPERE_NODE
        from repro.timing.costmodel import ModuleCostModel

        cost = ModuleCostModel(AUDIO_LDM, AMPERE_NODE)
        assert cost.forward_time(audio_workload(), tp=1) > 0


class TestWorkloadAudioFields:
    def test_sequence_tokens_include_audio(self):
        w = ModuleWorkload(samples=1, text_tokens=10, image_tokens=20,
                           audio_tokens=30)
        assert w.sequence_tokens == 60

    def test_add_and_scale(self):
        a = audio_workload(clips=1)
        b = audio_workload(clips=1)
        combined = a + b
        assert combined.audio_clips == 2
        halved = combined.scaled(0.5)
        assert halved.audio_clips == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ModuleWorkload(audio_tokens=-1)
