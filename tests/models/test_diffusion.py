"""Latent-diffusion generator tests."""

import pytest

from repro.models.base import ModuleKind, ModuleWorkload
from repro.models.diffusion import STABLE_DIFFUSION_2_1, DiffusionSpec, UNetConfig


class TestParams:
    def test_total_near_1b(self):
        # SD 2.1 is ~0.87B UNet + ~0.08B VAE; the paper rounds to 1B.
        assert 0.8e9 < STABLE_DIFFUSION_2_1.param_count() < 1.1e9

    def test_vae_not_trainable(self):
        spec = STABLE_DIFFUSION_2_1
        assert (
            spec.trainable_param_count()
            == spec.param_count() - spec.vae_params
        )

    def test_kind(self):
        assert STABLE_DIFFUSION_2_1.kind is ModuleKind.GENERATOR


class TestLatentGeometry:
    def test_latent_side_512(self):
        # 1024 tokens -> 512px image -> 64 latent at 8x downsampling.
        assert STABLE_DIFFUSION_2_1.latent_side_for_tokens(1024) == 64

    def test_latent_side_1024(self):
        assert STABLE_DIFFUSION_2_1.latent_side_for_tokens(4096) == 128

    def test_invalid_tokens(self):
        with pytest.raises(ValueError):
            STABLE_DIFFUSION_2_1.latent_side_for_tokens(0)


class TestFlops:
    def test_unet_flops_512_matches_sd21(self):
        """Real SD2.1 runs ~0.7 TFLOPs per 512x512 denoising step."""
        flops = STABLE_DIFFUSION_2_1.unet_flops_per_image(1024)
        assert 0.4e12 < flops < 1.2e12

    def test_resolution_scaling_superquadratic_in_side(self):
        f512 = STABLE_DIFFUSION_2_1.unet_flops_per_image(1024)
        f1024 = STABLE_DIFFUSION_2_1.unet_flops_per_image(4096)
        assert 3.5 * f512 < f1024 < 10 * f512

    def test_zero_images_zero_flops(self):
        assert (
            STABLE_DIFFUSION_2_1.forward_flops(ModuleWorkload(samples=1))
            == 0.0
        )

    def test_flops_linear_in_images(self):
        one = STABLE_DIFFUSION_2_1.forward_flops(
            ModuleWorkload(samples=1, image_tokens=1024, images=1)
        )
        three = STABLE_DIFFUSION_2_1.forward_flops(
            ModuleWorkload(samples=1, image_tokens=3072, images=3)
        )
        assert three == pytest.approx(3 * one, rel=1e-6)

    def test_vae_encode_cost_positive(self):
        assert STABLE_DIFFUSION_2_1.vae_encode_flops_per_image(1024) > 0


class TestCustomUNet:
    def test_fewer_levels_fewer_params(self):
        shallow = DiffusionSpec(
            name="small",
            unet=UNetConfig(channel_mults=(1, 2)),
        )
        assert shallow.param_count() < STABLE_DIFFUSION_2_1.param_count()

    def test_num_layers_positive(self):
        assert STABLE_DIFFUSION_2_1.num_layers > 4

    def test_activation_bytes_scale_with_images(self):
        w1 = ModuleWorkload(samples=1, image_tokens=1024, images=1)
        w2 = ModuleWorkload(samples=1, image_tokens=2048, images=2)
        spec = STABLE_DIFFUSION_2_1
        assert spec.activation_bytes(w2) == pytest.approx(
            2 * spec.activation_bytes(w1)
        )
