"""Multimodal LLM composition tests."""

import pytest

from repro.models.base import ModuleWorkload
from repro.models.mllm import (
    MLLM_9B,
    MLLM_15B,
    MLLM_72B,
    MLLM_PRESETS,
    image_tokens_for_resolution,
)


class TestPresets:
    @pytest.mark.parametrize(
        "spec,low,high",
        [
            (MLLM_9B, 8e9, 11e9),
            (MLLM_15B, 14e9, 18e9),
            (MLLM_72B, 70e9, 75e9),
        ],
    )
    def test_total_params(self, spec, low, high):
        assert low < spec.param_count() < high

    def test_generation_resolution_follows_model_size(self):
        # Large models generate at high resolution (section 7, Models).
        assert MLLM_9B.generation_resolution == 512
        assert MLLM_15B.generation_resolution == 512
        assert MLLM_72B.generation_resolution == 1024

    def test_generation_image_tokens(self):
        assert MLLM_9B.generation_image_tokens == 1024
        assert MLLM_72B.generation_image_tokens == 4096

    def test_registry(self):
        assert set(MLLM_PRESETS) == {
            "mllm-9b", "mllm-15b", "mllm-72b", "mllm-moe-40b",
        }


class TestComposition:
    def test_module_lookup(self):
        assert MLLM_9B.module("encoder") is MLLM_9B.encoder
        assert MLLM_9B.module("llm") is MLLM_9B.llm
        assert MLLM_9B.module("generator") is MLLM_9B.generator

    def test_unknown_module(self):
        with pytest.raises(KeyError):
            MLLM_9B.module("audio")

    def test_projectors_autoconfigured(self):
        assert MLLM_9B.input_projector.in_dim == 1280
        assert MLLM_9B.input_projector.out_dim == 4096
        assert MLLM_9B.output_projector.in_dim == 4096
        assert (
            MLLM_9B.output_projector.out_dim
            == MLLM_9B.generator.unet.context_dim
        )

    def test_forward_flops_sums_modules(self):
        w = ModuleWorkload(
            samples=1, text_tokens=2000, image_tokens=6000, images=6
        )
        total = MLLM_9B.forward_flops(w)
        parts = (
            MLLM_9B.encoder.forward_flops(w)
            + MLLM_9B.llm.forward_flops(w)
            + MLLM_9B.generator.forward_flops(w)
        )
        assert total > parts  # projectors included
        assert total < parts * 1.2

    def test_describe_mentions_all_modules(self):
        text = MLLM_72B.describe()
        for needle in ("vit", "llama3-70b", "stable-diffusion", "1024"):
            assert needle in text


class TestImageTokens:
    def test_resolution_mapping(self):
        assert image_tokens_for_resolution(512) == 1024
        assert image_tokens_for_resolution(1024) == 4096

    def test_invalid(self):
        with pytest.raises(ValueError):
            image_tokens_for_resolution(100)
