"""Tests for shared transformer arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.models.transformer import TransformerConfig


def small_config(**kwargs):
    defaults = dict(
        num_layers=2,
        hidden_size=64,
        ffn_hidden_size=256,
        num_heads=4,
        vocab_size=1000,
    )
    defaults.update(kwargs)
    return TransformerConfig(**defaults)


class TestValidation:
    def test_hidden_divisible_by_heads(self):
        with pytest.raises(ValueError):
            small_config(hidden_size=65)

    def test_heads_divisible_by_groups(self):
        with pytest.raises(ValueError):
            small_config(num_query_groups=3)

    def test_positive_layers(self):
        with pytest.raises(ValueError):
            small_config(num_layers=0)


class TestParams:
    def test_attention_params_no_gqa(self):
        cfg = small_config()
        # q, k, v, o each hidden x hidden.
        assert cfg.attention_params_per_layer() == 4 * 64 * 64

    def test_attention_params_with_gqa(self):
        cfg = small_config(num_query_groups=2)
        head_dim = 64 // 4
        kv_hidden = 2 * head_dim
        expected = 2 * 64 * 64 + 2 * 64 * kv_hidden
        assert cfg.attention_params_per_layer() == expected

    def test_gated_mlp_has_three_matrices(self):
        gated = small_config(gated_mlp=True)
        plain = small_config(gated_mlp=False)
        assert gated.mlp_params_per_layer() == 3 * 64 * 256
        assert plain.mlp_params_per_layer() == 2 * 64 * 256

    def test_embedding_untied_doubles(self):
        tied = small_config(tied_embeddings=True)
        untied = small_config(tied_embeddings=False)
        assert untied.embedding_params() == 2 * tied.embedding_params()

    def test_no_vocab_no_embedding(self):
        assert small_config(vocab_size=0).embedding_params() == 0

    def test_total_params_composition(self):
        cfg = small_config()
        expected = (
            cfg.num_layers * cfg.params_per_layer() + cfg.embedding_params()
        )
        assert cfg.total_params() == expected


class TestFlops:
    def test_matmul_flops_track_params(self):
        cfg = small_config()
        per_layer_params = (
            cfg.attention_params_per_layer() + cfg.mlp_params_per_layer()
        )
        assert cfg.matmul_flops_per_token_per_layer() == pytest.approx(
            2.0 * per_layer_params
        )

    def test_causal_halves_attention_scores(self):
        causal = small_config(causal=True)
        full = small_config(causal=False)
        s = 1024
        assert causal.attention_score_flops_per_token_per_layer(
            s
        ) == pytest.approx(
            full.attention_score_flops_per_token_per_layer(s) / 2
        )

    def test_forward_flops_linear_in_tokens(self):
        cfg = small_config()
        assert cfg.forward_flops(200, 1024) == pytest.approx(
            2 * cfg.forward_flops(100, 1024)
        )

    def test_lm_head_included_when_vocab_set(self):
        with_head = small_config(vocab_size=1000)
        without = small_config(vocab_size=0)
        diff = with_head.forward_flops_per_token(
            128
        ) - without.forward_flops_per_token(128)
        assert diff == pytest.approx(2.0 * 64 * 1000)

    @given(st.integers(min_value=1, max_value=8192))
    def test_attention_flops_nonnegative(self, seq_len):
        cfg = small_config()
        assert cfg.attention_score_flops_per_token_per_layer(seq_len) >= 0

    def test_negative_seq_rejected(self):
        with pytest.raises(ValueError):
            small_config().attention_score_flops_per_token_per_layer(-1)


class TestActivations:
    def test_activation_bytes_linear_in_tokens(self):
        cfg = small_config()
        assert cfg.activation_bytes(100, 512) == pytest.approx(
            100 * cfg.activation_bytes(1, 512)
        )

    def test_activation_factor_override(self):
        full = small_config(activation_bytes_per_token_factor=34.0)
        recompute = small_config(activation_bytes_per_token_factor=8.0)
        ratio = full.activation_bytes(10, 512) / recompute.activation_bytes(
            10, 512
        )
        assert ratio == pytest.approx(34.0 / 8.0)
