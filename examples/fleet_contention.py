"""Shared-cluster contention: three scheduling policies, one workload.

Six mllm-9b fine-tuning jobs — each demanding 48 GPUs — arrive every
two simulated minutes on a 96-GPU cluster that can hold at most two of
them at full size. Failures strike with a 60 GPU-hour MTBF and jobs are
elastic, so the scheduler's choices compound with the cluster's
dynamics. The same workload runs under all three policies:

* ``fifo``       — arrival order, full demand, no reshaping;
* ``fair-share`` — max-min node shares, graceful elastic resizes;
* ``priority``   — even-indexed jobs are high priority and preempt.

Run with::

    PYTHONPATH=src python examples/fleet_contention.py
"""

from repro.core.config import DistTrainConfig
from repro.core.reports import format_table
from repro.fleet import FleetSpec, run_fleet
from repro.scenarios import ScenarioSpec


def main() -> None:
    config = DistTrainConfig.preset(
        "mllm-9b", num_gpus=48, global_batch_size=16
    )
    scenario = ScenarioSpec(
        num_iterations=400,
        checkpoint_interval=25,
        mtbf_gpu_hours=60.0,
        elastic=True,
        repair_seconds=600.0,
    )

    rows = []
    per_policy = {}
    for policy in ("fifo", "fair-share", "priority"):
        spec = FleetSpec.homogeneous(
            config,
            cluster_gpus=96,
            num_jobs=6,
            job_gpus=48,
            arrival_spacing_s=120.0,
            priorities=(1, 0),  # even arrivals outrank odd ones
            policy=policy,
            scenario=scenario,
        )
        result = run_fleet(spec)
        per_policy[policy] = result
        m = result.metrics()
        rows.append([
            policy,
            f"{m['makespan_seconds']:.0f}",
            f"{m['fleet_goodput'] * 100:.1f}%",
            f"{m['utilization'] * 100:.1f}%",
            f"{m['mean_jct_seconds']:.0f}",
            f"{m['mean_queue_seconds']:.0f}",
            int(m["num_failures"]),
            int(m["num_replans"]),
            int(m["preemptions"]),
            f"{result.plan_cache_hits}/{result.plan_cache_misses}",
        ])

    print(format_table(
        ["policy", "makespan", "goodput", "util", "mean JCT",
         "mean queue", "fail", "replan", "preempt", "plan hit/miss"],
        rows,
        title="6 x mllm-9b (48 GPUs each) on 96 shared GPUs:",
    ))

    # Per-job detail for the most interesting policy: who paid for the
    # priority jobs' latency?
    result = per_policy["priority"]
    print(format_table(
        ["job", "prio", "arrive", "start", "JCT", "queued", "goodput",
         "preempt"],
        [
            [
                r.name, r.priority, f"{r.arrival_s:.0f}",
                f"{r.start_s:.0f}", f"{r.jct_seconds:.0f}",
                f"{r.queue_seconds:.0f}",
                f"{r.result.goodput * 100:.1f}%", r.preemptions,
            ]
            for r in result.records
        ],
        title="priority policy, per-job outcomes:",
    ))


if __name__ == "__main__":
    main()
