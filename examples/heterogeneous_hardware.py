"""Heterogeneous hardware for disaggregated modules (section 8).

Because DistTrain disaggregates the three modules, each can run on the
hardware that suits it: the compute-light ViT encoder moves to economical
L20 GPUs while the LLM backbone keeps the A100 pool. This example
quantifies the trade: encoder replicas needed, stage time, and the A100s
freed for the backbone.

Run:  python examples/heterogeneous_hardware.py
"""

import math

from repro.cluster.cluster import ClusterSpec, NodePool
from repro.cluster.node import AMPERE_NODE, L20_NODE
from repro.core.reports import format_table
from repro.data.synthetic import SyntheticMultimodalDataset
from repro.models.base import ModuleWorkload
from repro.models.mllm import MLLM_9B
from repro.orchestration.problem import SampleProfile
from repro.timing.costmodel import ModuleCostModel


def main() -> None:
    profile = SampleProfile.from_samples(
        SyntheticMultimodalDataset(seed=1).take(128)
    )
    workload = ModuleWorkload(
        samples=1,
        image_tokens=round(profile.image_tokens),
        images=round(profile.images),
    )

    a100_cost = ModuleCostModel(MLLM_9B.encoder, AMPERE_NODE)
    l20_cost = ModuleCostModel(MLLM_9B.encoder, L20_NODE)
    t_a100 = a100_cost.forward_time(workload, tp=1)
    t_l20 = l20_cost.forward_time(workload, tp=1)

    # Suppose the LLM stage time budget per microbatch is 250 ms and the
    # encoder must keep pace for 16 concurrent microbatch streams.
    budget = 0.25
    dp_lm = 16
    replicas_a100 = math.ceil(dp_lm * t_a100 / budget)
    replicas_l20 = math.ceil(dp_lm * t_l20 / budget)

    print(format_table(
        ["device", "per-sample encoder fwd", "replicas to keep pace",
         "relative cost*"],
        [
            ["A100-80G", f"{t_a100 * 1e3:.0f} ms", replicas_a100,
             f"{replicas_a100 * 1.0:.1f}"],
            ["L20", f"{t_l20 * 1e3:.0f} ms", replicas_l20,
             f"{replicas_l20 * 0.25:.1f}"],
        ],
        title="Encoder placement: A100 vs L20 "
              "(*cost unit = one A100; L20 ~ 0.25)",
    ))
    print()
    freed = replicas_a100
    print(f"Moving the encoder to {replicas_l20} L20s frees {freed} A100s "
          f"for the LLM backbone at "
          f"~{replicas_l20 * 0.25 / replicas_a100:.2f}x the hardware cost "
          f"of the A100 encoder pool.")

    # The heterogeneous cluster spec is a first-class object:
    cluster = ClusterSpec(
        pools=(
            NodePool(node=AMPERE_NODE, num_nodes=10),
            NodePool(node=L20_NODE, num_nodes=2, name="encoder-pool"),
        ),
        name="mixed-a100-l20",
    )
    print(f"\nheterogeneous cluster: {cluster.num_gpus} GPUs in "
          f"{len(cluster.pools)} pools "
          f"({', '.join(p.name for p in cluster.pools)})")


if __name__ == "__main__":
    main()
