"""Expert parallelism for a mixture-of-experts backbone (section 4.1).

DistTrain integrates EP into the LLM backbone unit: EP parallelizes
within a layer like TP, so the orchestration formulation carries over
with TP replaced by EP. This example plans MLLM-MoE-40B (8x7B backbone,
~12B active parameters) at EP=8 and compares the cost structure against
the dense 9B model.

Run:  python examples/moe_expert_parallelism.py
"""

from repro.cluster.cluster import make_cluster
from repro.core.reports import format_table
from repro.data.synthetic import SyntheticMultimodalDataset
from repro.models.base import ModuleWorkload
from repro.models.mllm import MLLM_9B, MLLM_MOE_40B
from repro.orchestration.adaptive import AdaptiveOrchestrator
from repro.orchestration.problem import OrchestrationProblem, SampleProfile
from repro.timing.costmodel import ModuleCostModel


def main() -> None:
    moe = MLLM_MOE_40B.llm
    print(format_table(
        ["backbone", "total params", "active params", "experts"],
        [
            ["llama3-7b (dense)",
             f"{MLLM_9B.llm.param_count() / 1e9:.1f}B",
             f"{MLLM_9B.llm.param_count() / 1e9:.1f}B", "-"],
            ["llama3-moe-8x7b",
             f"{moe.param_count() / 1e9:.1f}B",
             f"{moe.active_param_count() / 1e9:.1f}B",
             f"{moe.moe.num_experts} (top-{moe.moe.top_k})"],
        ],
        title="Dense vs MoE backbone:",
    ))
    print()

    # EP sweep: per-sample C(EP) with all-to-all included.
    cost = ModuleCostModel(moe, make_cluster(96).node, tp_overlap_fraction=0.9)
    w = ModuleWorkload(samples=1)
    rows = []
    for ep in (1, 2, 4, 8):
        fwd = cost.forward_time(w, tp=1, ep=ep)
        a2a = cost.ep_comm_time(w, ep)
        rows.append([ep, f"{fwd * 1e3:.0f} ms", f"{a2a * 1e3:.0f} ms",
                     f"{a2a / fwd * 100:.0f}%"])
    print(format_table(
        ["EP", "C_lm forward", "all-to-all", "comm share"],
        rows,
        title="Expert-parallel cost of one sample through the backbone:",
    ))
    print()

    # Orchestrate the MoE MLLM with EP=8.
    profile = SampleProfile.from_samples(
        SyntheticMultimodalDataset(seed=1).take(128)
    )
    problem = OrchestrationProblem(
        mllm=MLLM_MOE_40B,
        cluster=make_cluster(96),
        global_batch_size=64,
        profile=profile,
        llm_ep=8,
        tp_candidates=(1,),  # EP replaces TP (section 4.3)
    )
    result = AdaptiveOrchestrator(problem).plan()
    print(result.plan.describe())
    print(f"predicted iteration: {result.predicted_iteration_time:.2f} s "
          f"(bottleneck: {result.breakdown.bottleneck})")


if __name__ == "__main__":
    main()
