"""Production-scale orchestration planning (the paper's headline setup).

Plans MLLM-72B training on 1296 GPUs with global batch 1920 — the
configuration behind the paper's "54.7% MFU on 1172 GPUs" claim — then
inspects the resulting parallelism units, communication brokers, memory
budget, and the predicted vs simulated iteration time.

Run:  python examples/orchestration_planner.py
"""

from repro import DistTrainConfig, plan, simulate
from repro.core.reports import format_table
from repro.orchestration.memory import MemoryModel


def main() -> None:
    config = DistTrainConfig.preset(
        "mllm-72b", num_gpus=1296, global_batch_size=1920
    )
    result = plan(config)
    orchestration = result.plan

    print(orchestration.describe())
    print(f"solve time: {result.solve_seconds * 1e3:.0f} ms "
          f"({result.convex_solutions} convex subproblems, "
          f"{result.candidates_evaluated} rounded candidates)")
    print()

    # Parallelism units and their rank ranges.
    print("Parallelism units:")
    for unit in orchestration.build_units().values():
        print("  " + unit.describe())
    print()

    # Communication brokers bridging the unit boundaries (section 6).
    print("Communication brokers (gcd of neighbouring DP sizes):")
    for boundary, brokers in orchestration.build_brokers().items():
        print(f"  {boundary}: {len(brokers)} broker(s), "
              f"fan-in {brokers[0].fan_in}, fan-out {brokers[0].fan_out}")
    print()

    # Per-GPU memory budget of the LLM unit.
    memory = MemoryModel(gpu_memory_bytes=config.cluster.gpu.memory_bytes)
    llm_plan = orchestration.plans["llm"]
    from repro.models.base import ModuleWorkload

    static = memory.static_bytes_per_gpu(
        config.mllm.llm, llm_plan.tp, llm_plan.pp, llm_plan.dp, True
    )
    activations = memory.activation_bytes_per_gpu(
        config.mllm.llm,
        ModuleWorkload(samples=config.microbatch_size),
        llm_plan.tp,
        in_flight_microbatches=llm_plan.pp + 2,
    ) / llm_plan.pp
    print(format_table(
        ["component", "GiB per GPU"],
        [
            ["params + grads + ZeRO-1 shard", f"{static / 2**30:.1f}"],
            ["1F1B peak activations", f"{activations / 2**30:.1f}"],
            ["capacity (usable)", f"{memory.capacity / 2**30:.1f}"],
        ],
        title="LLM unit memory budget:",
    ))
    print()

    # Simulate a real iteration on synthetic LAION-like data.
    iteration = simulate(config, result)
    print(f"simulated iteration: {iteration.iteration_time:.1f} s, "
          f"MFU {iteration.mfu * 100:.1f}%, "
          f"{iteration.throughput_tokens_per_s / 1e6:.2f}M tokens/s "
          f"on {iteration.num_gpus} GPUs")
    print(f"(paper: 54.7% MFU on 1172 GPUs for the same task)")


if __name__ == "__main__":
    main()
