"""Campaign engine: sweep a grid of tasks in parallel, with caching.

Declares a models x systems x cluster-sizes grid as a SweepSpec, executes
it through the CampaignRunner (parallel workers, per-trial failure
isolation, content-addressed result cache), and analyses the outcome with
a ResultFrame — including the paper's headline DistTrain-vs-Megatron MFU
ratio. A second run of the same campaign completes entirely from cache.

Run:  python examples/campaign_sweep.py
"""

import tempfile

from repro import (
    Axis,
    CampaignRunner,
    ResultCache,
    SweepSpec,
    ZippedAxes,
)
from repro.core.reports import format_table
from repro.experiments import print_progress


def main() -> None:
    # The grid: 2 models x 2 systems x 3 cluster sizes, with the global
    # batch zipped to the cluster size so batch scales with the machine.
    spec = SweepSpec(
        name="example-campaign",
        axes=[
            Axis("model", ["mllm-9b", "mllm-15b"]),
            Axis("system", ["disttrain", "megatron-lm"]),
            ZippedAxes([
                Axis("gpus", [32, 48, 64]),
                Axis("gbs", [32, 48, 64]),
            ]),
        ],
    )
    print(f"campaign {spec.name!r}: {spec.num_trials} trials")

    with tempfile.TemporaryDirectory() as cache_dir:
        cache = ResultCache(cache_dir)

        # First run: every trial executes (in parallel across cores).
        first = CampaignRunner(spec, cache=cache,
                               progress=print_progress).run()
        print(first.summary())

        # Second run: pure cache hits — zero re-simulations.
        second = CampaignRunner(spec, cache=cache).run()
        print(second.summary())
        assert second.executed == 0

        # Analysis: filter, add the paper's MFU-gain ratio, tabulate.
        frame = (
            second.frame()
            .ok()
            .with_ratio(
                "mfu",
                baseline={"system": "megatron-lm"},
                join=("model", "gpus"),
                name="mfu_gain",
            )
            .sort_by("model", "gpus", "system")
        )
        header, rows = frame.table(
            ["model", "system", "gpus", "gbs", "mfu", "mfu_gain"]
        )
        print()
        print(format_table(
            header, rows,
            title="DistTrain vs Megatron-LM across cluster sizes:",
        ))

        gains = [
            row["mfu_gain"]
            for row in frame.filter(system="disttrain")
            if row["mfu_gain"]
        ]
        print(f"\nMFU gain over Megatron-LM: "
              f"{min(gains):.2f}x - {max(gains):.2f}x "
              f"across {len(gains)} tasks")


if __name__ == "__main__":
    main()
