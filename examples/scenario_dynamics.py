"""Dynamic-cluster scenarios: failures, stragglers, elastic resizing.

Simulates a 600-iteration run of the 9B multimodal model on 48 GPUs
under three regimes — a calm cluster, a flaky cluster that restarts on
replacement hardware, and the same flaky cluster with elastic
re-orchestration on the survivors — then replays the flaky run from its
recorded event trace to show scenarios are declaratively reproducible.

Run:  python examples/scenario_dynamics.py
"""

from repro.core.config import DistTrainConfig
from repro.core.reports import format_table
from repro.scenarios import ScenarioSpec, run_scenario


def main() -> None:
    config = DistTrainConfig.preset("mllm-9b", 48, 16)
    calm = ScenarioSpec(num_iterations=600, seed=7)
    flaky = calm.with_(mtbf_gpu_hours=10.0, straggler_rate=0.02)
    elastic = flaky.with_(elastic=True)

    results = {
        "calm": run_scenario(config, calm),
        "flaky (restart)": run_scenario(config, flaky),
        "flaky (elastic)": run_scenario(config, elastic),
    }

    print(format_table(
        ["scenario", "goodput", "failures", "replayed",
         "recovery", "mean MFU", "GPUs (min)"],
        [
            [
                name,
                f"{r.goodput * 100:.1f}%",
                r.num_failures,
                r.replayed_iterations,
                f"{r.recovery_seconds:.0f} s",
                f"{r.mean_mfu * 100:.1f}%",
                f"{r.initial_gpus} ({r.min_gpus})",
            ]
            for name, r in results.items()
        ],
        title="mllm-9b @ 48 GPUs, 600 iterations under cluster dynamics:",
    ))

    # Every run records its realized event trace; an explicit trace
    # replaces sampling, so replaying it reproduces the run exactly.
    recorded = results["flaky (restart)"]
    replay = run_scenario(config, flaky.with_(events=recorded.events))
    assert replay.metrics() == recorded.metrics()
    print(
        f"\nreplayed {len(recorded.events)} recorded events: "
        f"goodput {replay.goodput * 100:.1f}% "
        f"(identical to the sampled run)"
    )


if __name__ == "__main__":
    main()
