"""Visual demo of DistTrain's two-level data reordering (section 5).

Draws a skewed multimodal batch, shows the intra-microbatch straggler
across DP groups (Figure 6) and Algorithm 1's fix (Figure 11), then
renders the 1F1B pipeline before/after Algorithm 2's inter-microbatch
reordering (Figures 7/12) as ASCII Gantt charts.

Run:  python examples/data_reordering_demo.py
"""

import numpy as np

from repro.data.synthetic import SyntheticMultimodalDataset
from repro.pipeline.ops import PipelineOp
from repro.pipeline.schedules import ScheduleKind
from repro.pipeline.simulator import PipelineSimulator, StageWork
from repro.reordering.baselines import random_order
from repro.reordering.inter import InterReorderer, MicrobatchCostModel
from repro.reordering.intra import intra_reorder, reordered_makespan
from repro.viz import stage_utilization_chart


def intra_demo() -> None:
    print("=" * 72)
    print("Intra-microbatch reordering (Algorithm 1, Figures 6/11)")
    print("=" * 72)
    batch = SyntheticMultimodalDataset(seed=7).take(64)
    dp = 8
    ideal = sum(s.size for s in batch) / dp
    for label, order in (
        ("arrival order", list(batch)),
        ("random (Megatron-LM)", random_order(batch, seed=0)),
        ("Algorithm 1 (LPT)", intra_reorder(batch, dp)),
    ):
        makespan = reordered_makespan(order, dp)
        bar = "#" * int(40 * makespan / (1.5 * ideal))
        print(f"  {label:<22} straggler load {makespan:>8.0f} tokens "
              f"({makespan / ideal:.3f}x ideal) {bar}")
    print()


def inter_demo() -> None:
    print("=" * 72)
    print("Inter-microbatch reordering (Algorithm 2, Figures 7/12)")
    print("=" * 72)
    rng = np.random.default_rng(3)
    l, p = 12, 4
    fwd = np.ones((l, p)) * 1.0
    fwd[:, 0] = rng.lognormal(0.1, 0.8, l)   # skewed encoder stage
    fwd[:, -1] = rng.lognormal(-0.8, 0.8, l)  # skewed generator stage
    bwd = 2.0 * fwd
    costs = MicrobatchCostModel(fwd=fwd, bwd=bwd)
    reorderer = InterReorderer(costs)

    def render(order, label):
        def duration(op: PipelineOp) -> float:
            table = fwd if op.is_forward else bwd
            return float(table[order[op.microbatch], op.stage])

        sim = PipelineSimulator(p, l, ScheduleKind.ONE_F_ONE_B)
        trace = sim.run(StageWork(duration=duration))
        print(f"{label}: makespan {trace.makespan:.1f}s, "
              f"bubble {trace.bubble_fraction() * 100:.0f}%")
        print(trace.render_ascii(100))
        print(stage_utilization_chart(trace, width=40))
        print()
        return trace.makespan

    base = render(list(range(l)), "before (arrival order)")
    ours = render(reorderer.reorder(), "after Algorithm 2")
    print(f"inter-microbatch reordering saved "
          f"{(1 - ours / base) * 100:.1f}% of the pipeline makespan")


def main() -> None:
    intra_demo()
    inter_demo()


if __name__ == "__main__":
    main()
