"""Audio as an additional modality (Table 1: BEATs, AudioLDM).

The MLLM architecture is modality-agnostic: any encoder/generator pair
implementing ModuleSpec plugs into the cost models, reordering, and
orchestration machinery. This example prices a BEATs audio encoder and
an AudioLDM generator, generates a mixed image+audio data stream, and
shows that Algorithm 1 balances audio-induced stragglers exactly like
image-induced ones.

Run:  python examples/audio_modality.py
"""

import numpy as np

from repro.cluster.node import AMPERE_NODE
from repro.core.reports import format_table
from repro.data.distributions import DataDistributionConfig
from repro.data.synthetic import SyntheticMultimodalDataset
from repro.models.audio import AUDIO_LDM, BEATS_BASE
from repro.models.base import ModuleWorkload
from repro.reordering.intra import intra_reorder, reordered_makespan
from repro.timing.costmodel import ModuleCostModel


def module_costs() -> None:
    enc_cost = ModuleCostModel(BEATS_BASE, AMPERE_NODE)
    gen_cost = ModuleCostModel(AUDIO_LDM, AMPERE_NODE)
    rows = []
    for seconds in (5, 10, 30):
        tokens = BEATS_BASE.tokens_for_duration(seconds)
        w = ModuleWorkload(samples=1, audio_tokens=tokens, audio_clips=1)
        rows.append([
            f"{seconds}s clip ({tokens} tokens)",
            f"{enc_cost.forward_time(w, tp=1) * 1e3:.1f} ms",
            f"{gen_cost.forward_time(w, tp=1) * 1e3:.1f} ms",
        ])
    print(format_table(
        ["clip", "BEATs encode", "AudioLDM generate (1 step)"],
        rows,
        title=f"Audio module costs on one A100 "
              f"(BEATs {BEATS_BASE.param_count() / 1e6:.0f}M, "
              f"AudioLDM {AUDIO_LDM.param_count() / 1e6:.0f}M):",
    ))
    print()


def mixed_stream_straggler_demo() -> None:
    config = DataDistributionConfig(audio_fraction=0.5)
    dataset = SyntheticMultimodalDataset(seed=21, config=config)
    batch = dataset.take(64)
    with_audio = sum(1 for s in batch if s.audio_tokens > 0)
    dp = 8
    naive = reordered_makespan(batch, dp)
    balanced = reordered_makespan(intra_reorder(batch, dp), dp)
    ideal = sum(s.size for s in batch) / dp
    print(format_table(
        ["metric", "value"],
        [
            ["samples with audio", f"{with_audio}/64"],
            ["mean audio tokens/sample",
             f"{np.mean([s.audio_tokens for s in batch]):.0f}"],
            ["straggler load, arrival order", f"{naive / ideal:.3f}x ideal"],
            ["straggler load, Algorithm 1", f"{balanced / ideal:.3f}x ideal"],
        ],
        title="Mixed image+audio stream across 8 DP groups:",
    ))
    print("\nAlgorithm 1 sorts on the sample's total modality tokens "
          "(image + audio), so audio heterogeneity is balanced for free.")


def main() -> None:
    module_costs()
    mixed_stream_straggler_demo()


if __name__ == "__main__":
    main()
