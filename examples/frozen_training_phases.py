"""Frozen-training phases (section 7.3, Figures 18/19).

Production multimodal LLM training freezes different module subsets per
phase (e.g. align projectors first, then train the encoder, then the
LLM). DistTrain re-orchestrates for every phase; Megatron-LM's monolithic
mapping cannot adapt. This example sweeps the paper's four settings.

Run:  python examples/frozen_training_phases.py
"""

from repro import DistTrainConfig, plan, simulate
from repro.core.reports import format_table

SETTINGS = ("all-frozen", "encoder-only", "llm-only", "generator-only")


def main() -> None:
    rows = []
    for setting in SETTINGS:
        config = DistTrainConfig.preset(
            "mllm-9b", num_gpus=96, global_batch_size=128, frozen=setting
        )
        ours = simulate(config, plan(config))
        megatron_config = config.with_system("megatron-lm")
        theirs = simulate(megatron_config, plan(megatron_config))
        rows.append([
            setting,
            f"{theirs.mfu * 100:.1f}%",
            f"{ours.mfu * 100:.1f}%",
            f"{ours.throughput_tokens_per_s / 1e3:.0f}K",
            f"{ours.throughput_tokens_per_s / theirs.throughput_tokens_per_s:.2f}x",
        ])
    print(format_table(
        ["frozen setting", "megatron MFU", "disttrain MFU",
         "disttrain tok/s", "tput gain"],
        rows,
        title="MLLM-9B frozen-training phases on 96 GPUs "
              "(paper: 1.4-2.9x MFU, 1.2-2.9x throughput)",
    ))


if __name__ == "__main__":
    main()
