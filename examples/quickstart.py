"""Quickstart: plan and simulate multimodal LLM training with DistTrain.

Plans MLLM-9B training on a 96-GPU cluster, simulates one iteration under
DistTrain and under the Megatron-LM baseline, and prints the comparison.

Run:  python examples/quickstart.py
"""

from repro import DistTrainConfig, compare_systems, plan
from repro.core.reports import format_comparison

def main() -> None:
    # One training task: MLLM-9B (ViT-Huge + Llama3-7B + SD2.1),
    # 96 GPUs, 128 packed 8K-token samples per iteration.
    config = DistTrainConfig.preset(
        "mllm-9b", num_gpus=96, global_batch_size=128
    )

    # 1. What does the adaptive orchestrator decide?
    orchestration = plan(config)
    print("DistTrain's disaggregated model orchestration:")
    print(orchestration.plan.describe())
    print(f"  decided in {orchestration.solve_seconds * 1e3:.0f} ms over "
          f"{orchestration.candidates_evaluated} candidates")
    print(f"  predicted iteration: "
          f"{orchestration.predicted_iteration_time:.2f} s "
          f"(bottleneck: {orchestration.breakdown.bottleneck})")
    print()

    # 2. Simulate DistTrain vs Megatron-LM on the same task.
    comparison = compare_systems(
        config, systems=("disttrain", "megatron-lm")
    )
    print(format_comparison(comparison, title="One training iteration:"))
    print()
    print(f"DistTrain speedup: "
          f"{comparison.throughput_ratio('megatron-lm'):.2f}x throughput, "
          f"{comparison.mfu_ratio('megatron-lm'):.2f}x MFU")


if __name__ == "__main__":
    main()
